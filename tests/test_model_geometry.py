"""Tests for repro.model.geometry — directions and turn semantics."""

import pytest

from repro.model.geometry import Direction, TurnType


class TestDirection:
    def test_opposites(self):
        assert Direction.N.opposite is Direction.S
        assert Direction.E.opposite is Direction.W
        assert Direction.S.opposite is Direction.N
        assert Direction.W.opposite is Direction.E

    def test_clockwise_cycle(self):
        order = [Direction.N, Direction.E, Direction.S, Direction.W]
        for current, expected in zip(order, order[1:] + order[:1]):
            assert current.clockwise is expected

    def test_counter_clockwise_inverts_clockwise(self):
        for d in Direction:
            assert d.clockwise.counter_clockwise is d

    def test_straight_exit(self):
        for d in Direction:
            assert d.exit_side(TurnType.STRAIGHT) is d.opposite

    def test_paper_left_turn_example(self):
        # L_1^6: from the north approach, a left turn exits east (Fig. 1).
        assert Direction.N.exit_side(TurnType.LEFT) is Direction.E

    def test_paper_right_turn_example(self):
        # c2 activates L_1^8: north approach right turn exits west.
        assert Direction.N.exit_side(TurnType.RIGHT) is Direction.W

    @pytest.mark.parametrize("approach", list(Direction))
    @pytest.mark.parametrize("turn", list(TurnType))
    def test_turn_to_roundtrip(self, approach, turn):
        assert approach.turn_to(approach.exit_side(turn)) is turn

    @pytest.mark.parametrize("approach", list(Direction))
    def test_u_turn_rejected(self, approach):
        with pytest.raises(ValueError):
            approach.turn_to(approach)

    def test_exit_sides_distinct(self):
        for approach in Direction:
            exits = {approach.exit_side(t) for t in TurnType}
            assert len(exits) == 3
            assert approach not in exits
