"""The local fleet runner: shard subprocesses + merge = one store.

These run real ``spawn`` subprocesses on a tiny grid, so they assert
the whole contract at once: the merged canonical store is
byte-identical to a serial run of the same grid, shard stores resume,
and failures leave the shard stores behind for a re-run.
"""

import pytest

from repro.orchestration import ExperimentPool, SweepGrid, run_fleet
from repro.results import ResultStore


def tiny_grid() -> SweepGrid:
    return SweepGrid(
        scenarios=("steady-3x3",), seeds=(1, 2, 3, 4), durations=(60.0,)
    )


class TestRunFleet:
    def test_matches_serial_run_and_cleans_up(self, tmp_path):
        grid = tiny_grid()
        serial = ResultStore(tmp_path / "serial.sqlite")
        ExperimentPool(store=serial).run(grid.specs())

        report = run_fleet(grid, 2, tmp_path / "fleet.sqlite")
        assert report.shard_count == 2
        assert report.cells == len(grid)
        assert report.executed == len(grid)
        assert report.merged_rows == len(grid)

        merged = ResultStore(tmp_path / "fleet.sqlite")
        assert merged.export_rows() == serial.export_rows()
        # Shard stores are scratch space; a clean merge removes them.
        assert not (tmp_path / "fleet.sqlite.shards").exists()
        # The merged store satisfies a normal resume pass entirely.
        pool = ExperimentPool(store=merged)
        pool.run(grid.specs())
        assert pool.stats.executed == 0
        assert pool.stats.cache_hits == len(grid)

    def test_kept_shard_stores_resume(self, tmp_path):
        grid = tiny_grid()
        store = tmp_path / "fleet.sqlite"
        first = run_fleet(grid, 2, store, keep_shard_stores=True)
        assert first.executed == len(grid)
        assert (tmp_path / "fleet.sqlite.shards").is_dir()
        # Same partition, same shard store paths: the re-run finds
        # every cell already committed and simulates nothing.
        second = run_fleet(grid, 2, store, keep_shard_stores=True)
        assert second.executed == 0
        assert second.cache_hits == len(grid)
        assert second.identical_rows == len(grid)

    def test_more_shards_than_cells(self, tmp_path):
        grid = tiny_grid()
        report = run_fleet(grid, len(grid) + 3, tmp_path / "fleet.sqlite")
        assert report.cells == len(grid)
        assert sum(s.cells == 0 for s in report.shards) >= 3
        assert len(ResultStore(tmp_path / "fleet.sqlite")) == len(grid)

    def test_invalid_shard_count_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            run_fleet(tiny_grid(), 0, tmp_path / "fleet.sqlite")
