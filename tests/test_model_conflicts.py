"""Tests for repro.model.conflicts — geometric conflict analysis."""

import pytest

from repro.model.conflicts import movements_conflict, phase_conflicts, validate_phase
from repro.model.geometry import Direction, TurnType
from repro.model.grid import build_grid_network
from repro.model.movements import Movement
from repro.model.phases import Phase


def mv(approach: Direction, turn: TurnType) -> Movement:
    exit_side = approach.exit_side(turn)
    return Movement(
        in_road=f"in_{approach.value}",
        out_road=f"out_{exit_side.value}",
        approach=approach,
        turn=turn,
    )


class TestMovementsConflict:
    def test_identical_never_conflict(self):
        a = mv(Direction.N, TurnType.STRAIGHT)
        assert not movements_conflict(a, a)

    def test_same_approach_never_conflicts(self):
        # Dedicated turning lanes: all three turns from one approach coexist.
        a = mv(Direction.N, TurnType.STRAIGHT)
        b = mv(Direction.N, TurnType.LEFT)
        assert not movements_conflict(a, b)

    def test_merge_conflict(self):
        # Both end on the east exit road.
        a = mv(Direction.N, TurnType.LEFT)       # N -> E
        b = mv(Direction.W, TurnType.STRAIGHT)   # W -> E
        assert movements_conflict(a, b, mode="strict")
        assert movements_conflict(a, b, mode="paper")

    def test_opposing_straights_compatible(self):
        a = mv(Direction.N, TurnType.STRAIGHT)
        b = mv(Direction.S, TurnType.STRAIGHT)
        assert not movements_conflict(a, b, mode="strict")

    def test_crossing_straights_conflict(self):
        a = mv(Direction.N, TurnType.STRAIGHT)
        b = mv(Direction.E, TurnType.STRAIGHT)
        assert movements_conflict(a, b, mode="strict")
        assert movements_conflict(a, b, mode="paper")

    def test_opposing_left_vs_straight_strict_only(self):
        left = mv(Direction.N, TurnType.LEFT)
        straight = mv(Direction.S, TurnType.STRAIGHT)
        assert movements_conflict(left, straight, mode="strict")
        # The paper's Fig. 1 phase table declares these compatible.
        assert not movements_conflict(left, straight, mode="paper")

    def test_opposing_rights_compatible(self):
        a = mv(Direction.N, TurnType.RIGHT)
        b = mv(Direction.S, TurnType.RIGHT)
        assert not movements_conflict(a, b, mode="strict")

    def test_right_turn_vs_crossing_straight(self):
        # N-right (into the west exit) does not cross W-straight.
        right = mv(Direction.N, TurnType.RIGHT)
        straight = mv(Direction.W, TurnType.STRAIGHT)
        assert not movements_conflict(right, straight, mode="strict")

    def test_symmetry(self):
        pairs = [
            (mv(Direction.N, TurnType.LEFT), mv(Direction.S, TurnType.STRAIGHT)),
            (mv(Direction.N, TurnType.STRAIGHT), mv(Direction.E, TurnType.STRAIGHT)),
            (mv(Direction.N, TurnType.RIGHT), mv(Direction.W, TurnType.STRAIGHT)),
        ]
        for mode in ("strict", "paper"):
            for a, b in pairs:
                assert movements_conflict(a, b, mode) == movements_conflict(
                    b, a, mode
                )

    def test_unknown_mode_rejected(self):
        a = mv(Direction.N, TurnType.LEFT)
        b = mv(Direction.S, TurnType.STRAIGHT)
        with pytest.raises(ValueError):
            movements_conflict(a, b, mode="nope")


class TestPhaseValidation:
    def test_paper_phases_pass_paper_mode(self):
        network = build_grid_network(1, 1)
        network.intersections["J00"].validate_phases(mode="paper")

    def test_paper_c1_fails_strict_mode(self):
        network = build_grid_network(1, 1)
        intersection = network.intersections["J00"]
        phase_1 = intersection.phase_by_index(1)
        conflicts = phase_conflicts(phase_1, mode="strict")
        assert conflicts  # opposing left vs straight crossings

    def test_right_turn_phases_pass_strict(self):
        network = build_grid_network(1, 1)
        intersection = network.intersections["J00"]
        for index in (2, 4):
            validate_phase(intersection.phase_by_index(index), mode="strict")

    def test_validate_raises_with_detail(self):
        a = mv(Direction.N, TurnType.STRAIGHT)
        b = mv(Direction.E, TurnType.STRAIGHT)
        phase = Phase(index=1, movements=(a, b))
        with pytest.raises(ValueError, match="conflicting"):
            validate_phase(phase, mode="paper")
