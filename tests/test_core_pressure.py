"""Tests for repro.core.pressure — Eqs. 4-12."""

import pytest

from repro.core.pressure import (
    keep_threshold,
    link_gain,
    link_gain_original,
    max_link_gain,
    phase_gain,
    pressure,
)
from tests.conftest import make_observation

ALPHA, BETA = -1.0, -2.0


def movement_of(intersection, index=0):
    in_road = sorted(intersection.in_roads)[0]
    return intersection.movements_from(in_road)[index]


class TestPressure:
    def test_identity_eq4(self):
        assert pressure(7) == 7.0

    def test_zero(self):
        assert pressure(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pressure(-1)


class TestOriginalGain:
    def test_uses_total_incoming_queue(self, intersection):
        m = movement_of(intersection)
        siblings = intersection.movements_from(m.in_road)
        obs = make_observation(
            intersection,
            movement_queues={s.key: 4 for s in siblings},
        )
        # b_i = 12 (total over three lanes), b_i' = 0 -> gain 12 * mu.
        assert link_gain_original(m, obs) == 12.0

    def test_clamped_at_zero_eq5(self, intersection):
        m = movement_of(intersection)
        obs = make_observation(intersection, out_queues={m.out_road: 50})
        assert link_gain_original(m, obs) == 0.0

    def test_scales_with_service_rate(self, intersection):
        m = movement_of(intersection)
        obs = make_observation(intersection, movement_queues={m.key: 6})
        base = link_gain_original(m, obs)
        faster = type(m)(
            in_road=m.in_road,
            out_road=m.out_road,
            approach=m.approach,
            turn=m.turn,
            service_rate=2.0,
        )
        assert link_gain_original(faster, obs) == 2 * base


class TestModifiedGain:
    def test_general_case_eq6(self, intersection):
        m = movement_of(intersection)
        obs = make_observation(
            intersection,
            movement_queues={m.key: 10},
            out_queues={m.out_road: 3},
        )
        # (b_move - b_out + W*) mu = (10 - 3 + 120) * 1.
        assert link_gain(m, obs, ALPHA, BETA) == 127.0

    def test_negative_difference_allowed(self, intersection):
        m = movement_of(intersection)
        obs = make_observation(
            intersection,
            movement_queues={m.key: 1},
            out_queues={m.out_road: 50},
        )
        assert link_gain(m, obs, ALPHA, BETA) == 1 - 50 + 120

    def test_empty_movement_alpha(self, intersection):
        m = movement_of(intersection)
        obs = make_observation(intersection)
        assert link_gain(m, obs, ALPHA, BETA) == ALPHA

    def test_full_outgoing_beta(self, intersection):
        m = movement_of(intersection)
        obs = make_observation(
            intersection,
            movement_queues={m.key: 10},
            out_queues={m.out_road: 120},
        )
        assert link_gain(m, obs, ALPHA, BETA) == BETA

    def test_full_beats_empty_check_order(self, intersection):
        # Full outgoing road dominates even when the incoming lane is empty.
        m = movement_of(intersection)
        obs = make_observation(intersection, out_queues={m.out_road: 120})
        assert link_gain(m, obs, ALPHA, BETA) == BETA

    def test_general_case_always_above_specials(self, intersection):
        # Servable link: gain >= 0 > alpha > beta (with paper parameters).
        m = movement_of(intersection)
        obs = make_observation(
            intersection,
            movement_queues={m.key: 1},
            out_queues={m.out_road: 119},
        )
        assert link_gain(m, obs, ALPHA, BETA) >= 0 > ALPHA > BETA

    def test_non_negative_alpha_rejected(self, intersection):
        m = movement_of(intersection)
        obs = make_observation(intersection)
        with pytest.raises(ValueError):
            link_gain(m, obs, 0.0, BETA)
        with pytest.raises(ValueError):
            link_gain(m, obs, ALPHA, 0.5)


class TestPhaseGains:
    def test_phase_gain_is_sum_eq10(self, intersection):
        phase = intersection.phase_by_index(1)
        obs = make_observation(
            intersection,
            movement_queues={m.key: 5 for m in phase.movements},
        )
        total = phase_gain(phase, obs, ALPHA, BETA)
        parts = sum(link_gain(m, obs, ALPHA, BETA) for m in phase.movements)
        assert total == parts == 4 * 125.0

    def test_max_link_gain_eq11(self, intersection):
        phase = intersection.phase_by_index(1)
        best = phase.movements[2]
        obs = make_observation(intersection, movement_queues={best.key: 9})
        g_max, l_max = max_link_gain(phase, obs, ALPHA, BETA)
        assert l_max.key == best.key
        assert g_max == 129.0

    def test_max_link_gain_all_empty(self, intersection):
        phase = intersection.phase_by_index(1)
        obs = make_observation(intersection)
        g_max, _ = max_link_gain(phase, obs, ALPHA, BETA)
        assert g_max == ALPHA

    def test_tie_break_deterministic(self, intersection):
        phase = intersection.phase_by_index(1)
        obs = make_observation(
            intersection,
            movement_queues={m.key: 5 for m in phase.movements},
        )
        _, l_max = max_link_gain(phase, obs, ALPHA, BETA)
        assert l_max.key == phase.movements[0].key


class TestKeepThreshold:
    def test_eq12(self, intersection):
        m = movement_of(intersection)
        obs = make_observation(intersection)
        assert keep_threshold(obs, m) == 120.0

    def test_keep_iff_positive_pressure_difference(self, intersection):
        """g > g*  <=>  b_move - b_out > 0 in the general case."""
        m = movement_of(intersection)
        for q_move, q_out in [(5, 3), (3, 5), (4, 4)]:
            obs = make_observation(
                intersection,
                movement_queues={m.key: q_move},
                out_queues={m.out_road: q_out},
            )
            gain = link_gain(m, obs, ALPHA, BETA)
            assert (gain > keep_threshold(obs, m)) == (q_move > q_out)
