"""Tests for repro.core.pressure — Eqs. 4-12 and their array twins."""

import numpy as np
import pytest

from repro.core.pressure import (
    keep_threshold,
    keep_threshold_array,
    link_gain,
    link_gain_array,
    link_gain_original,
    link_gain_original_array,
    max_link_gain,
    max_link_gain_array,
    phase_gain,
    phase_gain_array,
    pressure,
)
from tests.conftest import make_observation

ALPHA, BETA = -1.0, -2.0


def movement_of(intersection, index=0):
    in_road = sorted(intersection.in_roads)[0]
    return intersection.movements_from(in_road)[index]


class TestPressure:
    def test_identity_eq4(self):
        assert pressure(7) == 7.0

    def test_zero(self):
        assert pressure(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pressure(-1)


class TestOriginalGain:
    def test_uses_total_incoming_queue(self, intersection):
        m = movement_of(intersection)
        siblings = intersection.movements_from(m.in_road)
        obs = make_observation(
            intersection,
            movement_queues={s.key: 4 for s in siblings},
        )
        # b_i = 12 (total over three lanes), b_i' = 0 -> gain 12 * mu.
        assert link_gain_original(m, obs) == 12.0

    def test_clamped_at_zero_eq5(self, intersection):
        m = movement_of(intersection)
        obs = make_observation(intersection, out_queues={m.out_road: 50})
        assert link_gain_original(m, obs) == 0.0

    def test_scales_with_service_rate(self, intersection):
        m = movement_of(intersection)
        obs = make_observation(intersection, movement_queues={m.key: 6})
        base = link_gain_original(m, obs)
        faster = type(m)(
            in_road=m.in_road,
            out_road=m.out_road,
            approach=m.approach,
            turn=m.turn,
            service_rate=2.0,
        )
        assert link_gain_original(faster, obs) == 2 * base


class TestModifiedGain:
    def test_general_case_eq6(self, intersection):
        m = movement_of(intersection)
        obs = make_observation(
            intersection,
            movement_queues={m.key: 10},
            out_queues={m.out_road: 3},
        )
        # (b_move - b_out + W*) mu = (10 - 3 + 120) * 1.
        assert link_gain(m, obs, ALPHA, BETA) == 127.0

    def test_negative_difference_allowed(self, intersection):
        m = movement_of(intersection)
        obs = make_observation(
            intersection,
            movement_queues={m.key: 1},
            out_queues={m.out_road: 50},
        )
        assert link_gain(m, obs, ALPHA, BETA) == 1 - 50 + 120

    def test_empty_movement_alpha(self, intersection):
        m = movement_of(intersection)
        obs = make_observation(intersection)
        assert link_gain(m, obs, ALPHA, BETA) == ALPHA

    def test_full_outgoing_beta(self, intersection):
        m = movement_of(intersection)
        obs = make_observation(
            intersection,
            movement_queues={m.key: 10},
            out_queues={m.out_road: 120},
        )
        assert link_gain(m, obs, ALPHA, BETA) == BETA

    def test_full_beats_empty_check_order(self, intersection):
        # Full outgoing road dominates even when the incoming lane is empty.
        m = movement_of(intersection)
        obs = make_observation(intersection, out_queues={m.out_road: 120})
        assert link_gain(m, obs, ALPHA, BETA) == BETA

    def test_general_case_always_above_specials(self, intersection):
        # Servable link: gain >= 0 > alpha > beta (with paper parameters).
        m = movement_of(intersection)
        obs = make_observation(
            intersection,
            movement_queues={m.key: 1},
            out_queues={m.out_road: 119},
        )
        assert link_gain(m, obs, ALPHA, BETA) >= 0 > ALPHA > BETA

    def test_non_negative_alpha_rejected(self, intersection):
        m = movement_of(intersection)
        obs = make_observation(intersection)
        with pytest.raises(ValueError):
            link_gain(m, obs, 0.0, BETA)
        with pytest.raises(ValueError):
            link_gain(m, obs, ALPHA, 0.5)


class TestPhaseGains:
    def test_phase_gain_is_sum_eq10(self, intersection):
        phase = intersection.phase_by_index(1)
        obs = make_observation(
            intersection,
            movement_queues={m.key: 5 for m in phase.movements},
        )
        total = phase_gain(phase, obs, ALPHA, BETA)
        parts = sum(link_gain(m, obs, ALPHA, BETA) for m in phase.movements)
        assert total == parts == 4 * 125.0

    def test_max_link_gain_eq11(self, intersection):
        phase = intersection.phase_by_index(1)
        best = phase.movements[2]
        obs = make_observation(intersection, movement_queues={best.key: 9})
        g_max, l_max = max_link_gain(phase, obs, ALPHA, BETA)
        assert l_max.key == best.key
        assert g_max == 129.0

    def test_max_link_gain_all_empty(self, intersection):
        phase = intersection.phase_by_index(1)
        obs = make_observation(intersection)
        g_max, _ = max_link_gain(phase, obs, ALPHA, BETA)
        assert g_max == ALPHA

    def test_tie_break_deterministic(self, intersection):
        phase = intersection.phase_by_index(1)
        obs = make_observation(
            intersection,
            movement_queues={m.key: 5 for m in phase.movements},
        )
        _, l_max = max_link_gain(phase, obs, ALPHA, BETA)
        assert l_max.key == phase.movements[0].key


class TestKeepThreshold:
    def test_eq12(self, intersection):
        m = movement_of(intersection)
        obs = make_observation(intersection)
        assert keep_threshold(obs, m) == 120.0

    def test_keep_iff_positive_pressure_difference(self, intersection):
        """g > g*  <=>  b_move - b_out > 0 in the general case."""
        m = movement_of(intersection)
        for q_move, q_out in [(5, 3), (3, 5), (4, 4)]:
            obs = make_observation(
                intersection,
                movement_queues={m.key: q_move},
                out_queues={m.out_road: q_out},
            )
            gain = link_gain(m, obs, ALPHA, BETA)
            assert (gain > keep_threshold(obs, m)) == (q_move > q_out)


class TestArrayKernels:
    """The ``*_array`` kernels against their scalar twins, cell by cell.

    Randomized observations sweep the general case together with both
    special branches (empty movements -> alpha, spillback-full outgoing
    roads -> beta); the ``empty`` and ``full`` modes pin the all-empty
    and all-full extremes where only a special branch can fire.
    Equality is exact (``==``), not approximate — the array kernels
    promise the scalar functions' float results bit for bit.
    """

    BATCH = 16
    SEEDS = {"mixed": 1, "empty": 2, "full": 3}

    @pytest.fixture
    def movements(self, intersection):
        return [
            m
            for in_road in sorted(intersection.in_roads)
            for m in intersection.movements_from(in_road)
        ]

    def _observations(self, intersection, movements, mode):
        rng = np.random.default_rng(self.SEEDS[mode])
        batch = []
        for _ in range(self.BATCH):
            movement_queues = {}
            out_queues = {}
            if mode != "empty":
                movement_queues = {
                    m.key: int(rng.integers(0, 8)) for m in movements
                }
            for road_id, road in intersection.out_roads.items():
                if mode == "full":
                    out_queues[road_id] = road.capacity
                elif mode == "mixed":
                    # capacity included: the beta branch must fire
                    # inside otherwise-general batches, not only in the
                    # all-full extreme.
                    out_queues[road_id] = int(
                        rng.choice(
                            [0, 1, 5, road.capacity - 1, road.capacity]
                        )
                    )
            batch.append(
                make_observation(
                    intersection,
                    movement_queues=movement_queues,
                    out_queues=out_queues,
                )
            )
        return batch

    def _arrays(self, movements, batch):
        queues = np.array(
            [
                [obs.movement_queue(m.in_road, m.out_road) for m in movements]
                for obs in batch
            ]
        )
        out_queues = np.array(
            [[obs.out_queue(m.out_road) for m in movements] for obs in batch]
        )
        capacities = np.array(
            [float(batch[0].capacity(m.out_road)) for m in movements]
        )
        rates = np.array([m.service_rate for m in movements])
        w_star = np.full(len(movements), float(batch[0].max_capacity()))
        incoming = np.array(
            [
                [obs.incoming_total(m.in_road) for m in movements]
                for obs in batch
            ]
        )
        return queues, out_queues, capacities, rates, w_star, incoming

    @pytest.mark.parametrize("mode", sorted(SEEDS))
    def test_link_gain_matches_scalar(self, intersection, movements, mode):
        batch = self._observations(intersection, movements, mode)
        queues, out_queues, capacities, rates, w_star, _ = self._arrays(
            movements, batch
        )
        gains = link_gain_array(
            queues, out_queues, capacities, w_star, rates, ALPHA, BETA
        )
        assert gains.shape == (self.BATCH, len(movements))
        for b, obs in enumerate(batch):
            for j, m in enumerate(movements):
                assert gains[b, j] == link_gain(m, obs, ALPHA, BETA), (
                    mode,
                    b,
                    m.key,
                )

    @pytest.mark.parametrize("mode", sorted(SEEDS))
    def test_original_gain_matches_scalar(self, intersection, movements, mode):
        batch = self._observations(intersection, movements, mode)
        _, out_queues, _, rates, _, incoming = self._arrays(movements, batch)
        gains = link_gain_original_array(incoming, out_queues, rates)
        for b, obs in enumerate(batch):
            for j, m in enumerate(movements):
                assert gains[b, j] == link_gain_original(m, obs), (
                    mode,
                    b,
                    m.key,
                )

    @pytest.mark.parametrize("mode", sorted(SEEDS))
    def test_phase_and_max_gain_match_scalar(
        self, intersection, movements, mode
    ):
        batch = self._observations(intersection, movements, mode)
        queues, out_queues, capacities, rates, w_star, _ = self._arrays(
            movements, batch
        )
        gains = link_gain_array(
            queues, out_queues, capacities, w_star, rates, ALPHA, BETA
        )
        column = {m.key: j for j, m in enumerate(movements)}
        phases = list(intersection.phases)
        width = max(len(phase.movements) for phase in phases)
        members = np.zeros((len(phases), width), dtype=np.int64)
        valid = np.zeros((len(phases), width), dtype=bool)
        for p, phase in enumerate(phases):
            for j, m in enumerate(phase.movements):
                members[p, j] = column[m.key]
                valid[p, j] = True
        totals = phase_gain_array(gains, members, valid)
        g_max, arg = max_link_gain_array(gains, members, valid)
        assert totals.shape == g_max.shape == (self.BATCH, len(phases))
        for b, obs in enumerate(batch):
            for p, phase in enumerate(phases):
                assert totals[b, p] == phase_gain(phase, obs, ALPHA, BETA), (
                    mode,
                    b,
                    phase.index,
                )
                scalar_gain, scalar_movement = max_link_gain(
                    phase, obs, ALPHA, BETA
                )
                assert g_max[b, p] == scalar_gain, (mode, b, phase.index)
                # argmax positions index the declaration order, so the
                # scalar tie-break (first maximal movement) must match.
                assert (
                    phase.movements[arg[b, p]].key == scalar_movement.key
                ), (mode, b, phase.index)

    def test_keep_threshold_matches_scalar(self, intersection, movements):
        batch = self._observations(intersection, movements, "mixed")
        rates = np.array([m.service_rate for m in movements])
        w_star = np.full(len(movements), float(batch[0].max_capacity()))
        thresholds = keep_threshold_array(w_star, rates)
        for j, m in enumerate(movements):
            assert thresholds[j] == keep_threshold(batch[0], m)

    def test_non_negative_alpha_beta_rejected(self, movements):
        shape = (1, len(movements))
        zeros = np.zeros(shape)
        with pytest.raises(ValueError):
            link_gain_array(
                zeros, zeros, zeros + 10, zeros + 10, zeros + 1, 0.0, BETA
            )
        with pytest.raises(ValueError):
            link_gain_array(
                zeros, zeros, zeros + 10, zeros + 10, zeros + 1, ALPHA, 0.5
            )
