"""The declarative experiment layer: registry, equivalence, sharing."""

import pytest

from repro.experiments.ablations import run_ablation
from repro.experiments.fig2 import FIG2, Fig2Result, run_fig2
from repro.experiments.fig34 import run_fig34
from repro.experiments.table3 import TABLE3, Table3Row, run_table3
from repro.orchestration import ExperimentPool, RunSpec
from repro.results import (
    ExperimentDefinition,
    get_experiment,
    load_builtin_experiments,
    register_experiment,
    run_experiment,
)

#: Small-horizon parameter sets reused below.
FIG2_SMALL = dict(
    periods=(12.0, 24.0), engine="meso", seed=1, segment_duration=60.0
)
TABLE3_SMALL = dict(
    patterns=("II",),
    engine="meso",
    seed=1,
    periods=(12.0, 20.0),
    duration_scale=0.05,
    mixed_segment_duration=None,
)


class TestRegistry:
    def test_all_six_drivers_registered(self):
        names = load_builtin_experiments()
        assert set(names) >= {
            "table3",
            "fig2",
            "fig34",
            "fig5",
            "ablations",
            "stability",
        }

    def test_get_by_name(self):
        assert get_experiment("fig2") is FIG2

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            get_experiment("fig99")

    def test_unknown_override_rejected_before_any_run(self):
        with pytest.raises(ValueError, match="no parameter"):
            run_experiment("fig2", perids=(10.0,))  # typo'd name

    def test_definitions_have_render(self):
        for name in load_builtin_experiments():
            assert callable(get_experiment(name).render)

    def test_specs_view_expands_without_running(self):
        specs = TABLE3.specs(**TABLE3_SMALL)
        # one pattern x (2 periods + 1 util reference)
        assert len(specs) == 3
        assert all(isinstance(spec, RunSpec) for spec in specs)


class TestPreRefactorEquivalence:
    """The definitions must reproduce the pre-refactor drivers exactly:
    identical specs, hence byte-identical summary numbers under fixed
    seeds."""

    def test_fig2_matches_handrolled_loop(self):
        # The pre-refactor fig2 body: explicit spec list + pool.run +
        # positional unpacking.
        duration = 4 * FIG2_SMALL["segment_duration"]
        scenario_params = {
            "mixed_segment_duration": FIG2_SMALL["segment_duration"]
        }
        specs = [
            RunSpec(
                pattern="mixed",
                controller="cap-bp",
                controller_params={"period": float(period)},
                engine="meso",
                seed=1,
                duration=duration,
                scenario_params=scenario_params,
            )
            for period in FIG2_SMALL["periods"]
        ]
        specs.append(
            RunSpec(
                pattern="mixed",
                controller="util-bp",
                engine="meso",
                seed=1,
                duration=duration,
                scenario_params=scenario_params,
            )
        )
        results = ExperimentPool().run(specs)
        expected = Fig2Result(
            periods=tuple(float(p) for p in FIG2_SMALL["periods"]),
            cap_bp_queuing_times=tuple(
                r.average_queuing_time for r in results[:-1]
            ),
            util_bp_queuing_time=results[-1].average_queuing_time,
        )
        assert run_fig2(**FIG2_SMALL) == expected
        assert run_experiment("fig2", **FIG2_SMALL) == expected

    def test_definition_specs_match_driver_specs(self):
        assert FIG2.specs(**FIG2_SMALL) == tuple(
            FIG2.build_specs(**FIG2.params(**FIG2_SMALL))
        )

    def test_table3_via_name_equals_wrapper(self):
        by_name = run_experiment("table3", **TABLE3_SMALL)
        by_wrapper = run_table3(**TABLE3_SMALL)
        assert by_name == by_wrapper
        assert isinstance(by_name[0], Table3Row)


class TestSharedStore:
    def test_rerun_through_store_executes_nothing(self, tmp_path):
        cold = ExperimentPool(store=tmp_path / "s.sqlite")
        first = run_fig2(**FIG2_SMALL, pool=cold)
        assert cold.stats.executed == len(FIG2_SMALL["periods"]) + 1

        warm = ExperimentPool(store=tmp_path / "s.sqlite")
        second = run_fig2(**FIG2_SMALL, pool=warm)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == cold.stats.executed
        assert second == first

    def test_drivers_share_cells_through_one_store(self, tmp_path):
        """fig2 and table3 both sweep mixed-pattern CAP-BP periods; a
        shared store computes the overlapping cells exactly once."""
        pool = ExperimentPool(store=tmp_path / "s.sqlite")
        run_fig2(
            periods=(12.0, 20.0), engine="meso", seed=1,
            segment_duration=180.0, pool=pool,
        )
        executed_by_fig2 = pool.stats.executed
        # table3 on the mixed pattern at the same horizon/segment hits
        # the same (mixed, cap-bp period, meso, seed 1) cells.
        run_table3(
            patterns=("mixed",),
            engine="meso",
            seed=1,
            periods=(12.0, 20.0),
            duration_scale=0.05,  # 4 h * 0.05 = 720 s = 4 * 180 s
            mixed_segment_duration=180.0,
            pool=pool,
        )
        assert pool.stats.cache_hits >= 3  # 2 periods + util reference
        assert pool.stats.executed == executed_by_fig2

    def test_different_drivers_one_pool_accumulate_stats(self, tmp_path):
        pool = ExperimentPool(store=tmp_path / "s.sqlite")
        run_fig34(engine="meso", duration=120.0, pool=pool)
        run_ablation("alpha-beta-order", pattern="II", duration=60.0, pool=pool)
        assert pool.stats.executed == 4  # 2 fig34 cells + 2 ablation cells
        assert len(pool.store.query()) == 4


class TestCustomDefinition:
    def test_register_and_run_a_custom_experiment(self):
        definition = ExperimentDefinition(
            name="tiny-demo",
            description="one cheap cell",
            build_specs=lambda seed: [
                RunSpec(pattern="I", seed=seed, duration=60.0)
            ],
            collect=lambda specs, results, params: results[0]
            .summary.vehicles_entered,
            render=lambda value: f"{value} vehicles",
            defaults=dict(seed=3),
        )
        register_experiment(definition)
        entered = run_experiment("tiny-demo")
        assert entered > 0
        assert definition.render(entered).endswith("vehicles")
