"""Orchestration layer: specs, grids, the pool and the result cache."""

import json

import pytest

from repro.experiments.runner import RunResult, run_scenario
from repro.scenarios.core import build_scenario
from repro.orchestration import (
    BatchRunSpec,
    ExperimentPool,
    RunSpec,
    SweepGrid,
    execute_spec,
)

#: A cheap cell reused across tests (90 s meso run).
QUICK = dict(pattern="I", controller="util-bp", engine="meso", duration=90.0)


class TestRunSpec:
    def test_hashable_and_dict_key(self):
        spec = RunSpec(**QUICK)
        assert {spec: 1}[RunSpec(**QUICK)] == 1

    def test_param_order_does_not_matter(self):
        a = RunSpec(controller_params={"alpha": -1.0, "beta": -2.0})
        b = RunSpec(controller_params={"beta": -2.0, "alpha": -1.0})
        assert a == b
        assert a.spec_hash() == b.spec_hash()

    def test_distinct_cells_hash_differently(self):
        base = RunSpec(**QUICK)
        assert base.spec_hash() != RunSpec(**{**QUICK, "seed": 2}).spec_hash()
        assert (
            base.spec_hash()
            != RunSpec(**{**QUICK, "duration": 120.0}).spec_hash()
        )

    def test_roundtrip(self):
        spec = RunSpec(
            pattern="mixed",
            controller="cap-bp",
            controller_params={"period": 18.0},
            engine="micro",
            seed=3,
            duration=250.0,
            mini_slot=2.0,
            scenario_params={"mixed_segment_duration": 600.0},
            record_phases=("J02",),
            record_queues=(("J02", "IN:E@J02"),),
        )
        rebuilt = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.spec_hash() == spec.spec_hash()

    def test_to_dict_is_pure_json(self):
        """Tuple-valued params must survive a json round trip unchanged.

        The result cache validates stored entries by comparing the
        loaded JSON against ``to_dict()``; a tuple that json turns
        into a list would defeat every lookup for such specs.
        """
        # Tuple values freeze/thaw through the same _freeze_params
        # mechanism for both param slots; scenario_params must also
        # pass the eager builder-signature validation, so the tuple
        # case rides on controller_params here.
        spec = RunSpec(
            controller_params={"weights": (1.0, 2.0)},
            scenario_params={"rows": 4, "cols": 3},
        )
        payload = spec.to_dict()
        assert payload == json.loads(json.dumps(payload))
        rebuilt = RunSpec.from_dict(payload)
        assert rebuilt == spec
        assert rebuilt.spec_hash() == spec.spec_hash()

    def test_unknown_engine_rejected_at_construction(self):
        """Engine typos must fail when the spec is built, not mid-sweep."""
        with pytest.raises(ValueError, match="unknown engine"):
            RunSpec(**{**QUICK, "engine": "warp-drive"})

    def test_engine_axis_hashes_distinctly(self):
        meso = RunSpec(**QUICK)
        counts = RunSpec(**{**QUICK, "engine": "meso-counts"})
        assert meso.spec_hash() != counts.spec_hash()

    def test_execute_matches_run_scenario(self):
        direct = run_scenario(
            build_scenario("I", seed=1),
            controller="util-bp",
            duration=90.0,
            engine="meso",
        )
        assert execute_spec(RunSpec(**QUICK)).summary == direct.summary


class TestRunResultSerialization:
    def test_roundtrip_with_traces(self):
        result = run_scenario(
            build_scenario("I", seed=5),
            controller="cap-bp",
            controller_params={"period": 16.0},
            duration=120.0,
            engine="meso",
            record_phases=("J00", "J11"),
            record_queues=(("J00", "IN:N@J00"),),
        )
        rebuilt = RunResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert rebuilt == result
        assert rebuilt.network_utilization().amber_share == pytest.approx(
            result.network_utilization().amber_share
        )


class TestSweepGrid:
    def test_cartesian_expansion(self):
        grid = SweepGrid(
            patterns=("I", "II"),
            controllers=["util-bp", ("cap-bp", {"period": 18.0})],
            seeds=(1, 2, 3),
            durations=(120.0,),
        )
        specs = grid.specs()
        assert len(grid) == len(specs) == 12
        assert len(set(specs)) == 12  # all cells distinct
        assert specs[0].controller == "util-bp"
        assert ("period", 18.0) in specs[3].controller_params

    def test_string_controller_entries_normalized(self):
        grid = SweepGrid(controllers=["util-bp"])
        assert grid.controllers == (("util-bp", ()),)

    def test_scenarios_axis_concatenates_with_patterns(self):
        grid = SweepGrid(
            patterns=("I",),
            scenarios=("surge-4x4", ("tidal-3x3", {"load": 1.2})),
            seeds=(1, 2),
            durations=(120.0,),
        )
        specs = grid.specs()
        assert len(grid) == len(specs) == 6
        workloads = {spec.pattern for spec in specs}
        assert workloads == {"I", "surge-4x4", "tidal-3x3"}
        tidal = [s for s in specs if s.pattern == "tidal-3x3"]
        assert all(("load", 1.2) in s.scenario_params for s in tidal)

    def test_per_entry_params_win_over_shared(self):
        grid = SweepGrid(
            patterns=(),
            scenarios=(("steady-3x3", {"load": 2.0}),),
            scenario_params={"load": 1.0, "capacity": 60},
            durations=(60.0,),
        )
        (spec,) = grid.specs()
        assert dict(spec.scenario_params) == {"load": 2.0, "capacity": 60}

    def test_scenarios_only_grid_sweeps_no_default_pattern(self):
        grid = SweepGrid(scenarios=("surge-4x4",), durations=(60.0,))
        assert grid.workloads() == (("surge-4x4", ()),)
        assert len(grid) == 1

    def test_default_grid_still_sweeps_pattern_one(self):
        grid = SweepGrid(durations=(60.0,))
        assert grid.workloads() == (("I", ()),)

    def test_engines_axis_expands_per_engine(self):
        grid = SweepGrid(
            patterns=("I",),
            engines=("meso", "meso-counts"),
            durations=(60.0,),
        )
        specs = grid.specs()
        assert len(specs) == 2
        assert {spec.engine for spec in specs} == {"meso", "meso-counts"}

    def test_unknown_engine_in_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            SweepGrid(engines=("meso", "warp-drive"))

    def test_pattern_only_param_on_scenario_rejected_at_construction(self):
        """A pattern-only kwarg shared with a catalog scenario must fail
        when the grid is built, not as a TypeError inside a worker."""
        with pytest.raises(ValueError, match="mixed_segment_duration"):
            SweepGrid(
                scenarios=("steady-3x3",),
                scenario_params={"mixed_segment_duration": 600.0},
                durations=(60.0,),
            )

    def test_unknown_scenario_param_rejected_on_spec(self):
        with pytest.raises(ValueError, match="not accepted"):
            RunSpec(
                pattern="surge-3x3",
                scenario_params={"demand_scale": 1.2},  # pattern-only
            )

    def test_per_entry_param_validated_against_its_own_workload(self):
        # 'load' is valid for catalog scenarios but not for patterns;
        # attaching it per-entry keeps the pattern cells clean.
        grid = SweepGrid(
            patterns=("I",),
            scenarios=(("steady-3x3", {"load": 1.2}),),
            durations=(60.0,),
        )
        assert len(grid.specs()) == 2
        with pytest.raises(ValueError, match="'I'"):
            SweepGrid(
                patterns=("I",),
                scenarios=("steady-3x3",),
                scenario_params={"load": 1.2},  # shared -> hits pattern I
                durations=(60.0,),
            )

    def test_scenario_cell_builds_and_executes(self):
        spec = SweepGrid(
            patterns=(),
            scenarios=("incident-3x3",),
            durations=(60.0,),
        ).specs()[0]
        scenario = spec.make_scenario()
        assert scenario.name == "incident-3x3"
        result = spec.execute()
        assert result.scenario_name == "incident-3x3"


class TestExperimentPool:
    def _specs(self):
        return SweepGrid(
            patterns=("I", "II"),
            controllers=["util-bp", ("cap-bp", {"period": 18.0})],
            durations=(90.0,),
        ).specs()

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ExperimentPool(workers=0)

    def test_parallel_matches_serial(self):
        specs = self._specs()
        serial = ExperimentPool(workers=1).run(specs)
        parallel = ExperimentPool(workers=2).run(specs)
        assert serial == parallel  # full result objects, not just summaries

    def test_duplicate_specs_executed_once(self):
        spec = RunSpec(**QUICK)
        pool = ExperimentPool()
        results = pool.run([spec, spec])
        assert pool.stats.executed == 1
        assert results[0] == results[1]

    def test_duplicate_cached_specs_counted_once(self, tmp_path):
        spec = RunSpec(**QUICK)
        ExperimentPool(store=tmp_path / "results.sqlite").run_one(spec)
        warm = ExperimentPool(store=tmp_path / "results.sqlite")
        results = warm.run([spec, spec])
        assert warm.stats.cache_hits == 1  # one read, fanned out
        assert warm.stats.executed == 0
        assert results[0] == results[1]

    def test_scenario_spec_round_trips_through_cache(self, tmp_path):
        spec = RunSpec(pattern="surge-3x3", duration=60.0)
        cold = ExperimentPool(store=tmp_path / "results.sqlite")
        first = cold.run_one(spec)
        warm = ExperimentPool(store=tmp_path / "results.sqlite")
        second = warm.run_one(spec)
        assert warm.stats.cache_hits == 1
        assert warm.stats.executed == 0
        assert first == second
        assert first.scenario_name == "surge-3x3"

    def test_warm_cache_executes_nothing(self, tmp_path):
        specs = self._specs()
        cold = ExperimentPool(workers=1, store=tmp_path / "results.sqlite")
        first = cold.run(specs)
        assert cold.stats.executed == len(specs)

        warm = ExperimentPool(workers=2, store=tmp_path / "results.sqlite")
        second = warm.run(specs)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == len(specs)
        assert second == first

    def test_partial_failure_keeps_completed_cells_cached(self, tmp_path):
        """An interrupted parallel sweep must resume from finished cells."""
        good = [RunSpec(**QUICK), RunSpec(**{**QUICK, "seed": 9})]
        bad = RunSpec(**{**QUICK, "controller": "cap-bp"})  # missing period
        pool = ExperimentPool(workers=2, store=tmp_path / "results.sqlite")
        with pytest.raises(TypeError, match="period"):
            pool.run([good[0], bad, good[1]])

        resumed = ExperimentPool(workers=2, store=tmp_path / "results.sqlite")
        resumed.run(good)
        assert resumed.stats.executed == 0
        assert resumed.stats.cache_hits == len(good)

    def test_stale_schema_entries_treated_as_miss(self, tmp_path):
        """Rows written under an older spec schema are never served."""
        import sqlite3

        spec = RunSpec(**QUICK)
        pool = ExperimentPool(store=tmp_path / "results.sqlite")
        pool.run_one(spec)
        with sqlite3.connect(tmp_path / "results.sqlite") as conn:
            conn.execute("UPDATE results SET spec_version = spec_version - 1")
        again = ExperimentPool(store=tmp_path / "results.sqlite")
        again.run_one(spec)
        assert again.stats.executed == 1  # stale entry treated as a miss

    def test_store_path_accepted_directly(self, tmp_path):
        """``store=`` takes a path to the SQLite file (no directory)."""
        spec = RunSpec(**QUICK)
        ExperimentPool(store=tmp_path / "s.sqlite").run_one(spec)
        warm = ExperimentPool(store=tmp_path / "s.sqlite")
        warm.run_one(spec)
        assert warm.stats.cache_hits == 1
        assert warm.stats.executed == 0

    def test_cache_distinguishes_specs(self, tmp_path):
        pool = ExperimentPool(store=tmp_path / "results.sqlite")
        a = pool.run_one(RunSpec(**QUICK))
        b = pool.run_one(RunSpec(**{**QUICK, "seed": 9}))
        assert pool.stats.executed == 2
        assert a.summary != b.summary

    def test_batch_size_validated(self):
        with pytest.raises(ValueError, match="batch_size"):
            ExperimentPool(batch_size=0)

    def test_cache_key_includes_engine(self, tmp_path):
        """A cached ``meso`` result must never satisfy a ``meso-counts``
        spec (or vice versa): the engines report different metric modes,
        so serving one for the other would silently mislabel results."""
        meso_spec = RunSpec(**QUICK)
        counts_spec = RunSpec(**{**QUICK, "engine": "meso-counts"})
        pool = ExperimentPool(store=tmp_path / "results.sqlite")
        meso_result = pool.run_one(meso_spec)
        counts_result = pool.run_one(counts_spec)
        assert pool.stats.executed == 2  # second run was NOT a cache hit
        assert pool.stats.cache_hits == 0
        assert meso_result.summary.delay_mode == "per-vehicle"
        assert counts_result.summary.delay_mode == "aggregate"
        # Same seed, same dynamics: the trajectories agree even though
        # the cache rightly keeps the cells separate.
        assert (
            counts_result.summary.vehicles_left
            == meso_result.summary.vehicles_left
        )
        # Warm re-reads resolve each spec to its own entry.
        warm = ExperimentPool(store=tmp_path / "results.sqlite")
        assert warm.run_one(meso_spec).summary.delay_mode == "per-vehicle"
        assert warm.run_one(counts_spec).summary.delay_mode == "aggregate"
        assert warm.stats.cache_hits == 2
        assert warm.stats.executed == 0


class TestSeedBatching:
    """The pool groups same-cell/different-seed meso-vec specs into one
    batched execution and fans results back into per-spec store rows."""

    def _specs(self, seeds=(1, 2, 3, 4), duration=120.0):
        return SweepGrid(
            patterns=(),
            scenarios=("steady-3x3",),
            seeds=seeds,
            engines=("meso-vec",),
            durations=(duration,),
        ).specs()

    def test_batched_matches_unbatched(self):
        specs = self._specs()
        batched = ExperimentPool(batch_size=16).run(specs)
        unbatched = ExperimentPool(batch_size=1).run(specs)
        assert batched == unbatched

    def test_plan_units_groups_only_batchable_cells(self):
        vec = self._specs(seeds=(1, 2, 3, 4, 5))
        meso = [
            RunSpec(pattern="steady-3x3", engine="meso", seed=s, duration=120.0)
            for s in (1, 2)
        ]
        lone = RunSpec(
            pattern="steady-3x3", engine="meso-vec", seed=9, duration=60.0
        )
        pool = ExperimentPool(batch_size=2)
        units = pool._plan_units(list(vec) + meso + [lone])
        batches = [u for u in units if isinstance(u, BatchRunSpec)]
        singles = [u for u in units if isinstance(u, RunSpec)]
        # 5 batchable seeds chunked to (2, 2, 1): two batches, and the
        # odd seed plus the meso cells and the different-duration cell
        # stay individual.
        assert sorted(len(b) for b in batches) == [2, 2]
        assert len(singles) == 4
        assert {spec.engine for spec in meso} == {"meso"}
        # every input spec appears exactly once across all units
        flattened = [s for b in batches for s in b.specs()] + singles
        assert sorted(s.spec_hash() for s in flattened) == sorted(
            s.spec_hash() for s in list(vec) + meso + [lone]
        )

    def test_resume_skips_cached_cells_when_batching(self, tmp_path):
        """A partially complete batched sweep re-executes only the
        missing cells: cache keys are per spec, not per batch."""
        specs = self._specs()
        first = ExperimentPool(store=tmp_path / "s.sqlite", batch_size=16)
        first.run(specs[:2])
        assert first.stats.executed == 2

        resumed = ExperimentPool(store=tmp_path / "s.sqlite", batch_size=16)
        results = resumed.run(specs)
        assert resumed.stats.cache_hits == 2
        assert resumed.stats.executed == 2
        # the store now holds one row per seed
        from repro.results.store import ResultStore

        store = ResultStore(tmp_path / "s.sqlite")
        assert len(store) == len(specs)
        store.close()
        # and a fully warm rerun computes nothing
        warm = ExperimentPool(store=tmp_path / "s.sqlite", batch_size=16)
        again = warm.run(specs)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == len(specs)
        assert again == results

    def test_batched_rows_interchange_with_single_execution(self, tmp_path):
        """A row written by a batch satisfies the same spec run singly,
        and vice versa (unchanged cache keys, value-identical payloads)."""
        specs = self._specs(seeds=(1, 2))
        ExperimentPool(store=tmp_path / "s.sqlite", batch_size=16).run(specs)
        singly = ExperimentPool(store=tmp_path / "s.sqlite", batch_size=1)
        results = singly.run(specs)
        assert singly.stats.cache_hits == 2 and singly.stats.executed == 0
        direct = ExperimentPool(batch_size=1).run(specs)
        assert results == direct

    def test_parallel_batched_matches_serial(self):
        specs = self._specs()
        serial = ExperimentPool(workers=1, batch_size=2).run(specs)
        parallel = ExperimentPool(workers=2, batch_size=2).run(specs)
        assert serial == parallel

    def test_from_specs_rejects_mixed_cells(self):
        specs = self._specs(seeds=(1, 2))
        other = RunSpec(
            pattern="steady-3x3", engine="meso-vec", seed=3, duration=60.0
        )
        with pytest.raises(ValueError, match="differ only in seed"):
            BatchRunSpec.from_specs([specs[0], other])

    def test_non_batch_engine_rejected(self):
        with pytest.raises(ValueError, match="cannot step seed-batches"):
            BatchRunSpec(
                template=RunSpec(pattern="steady-3x3", duration=60.0),
                seeds=(1, 2),
            )

    def test_batch_execute_matches_member_execution(self):
        specs = self._specs(seeds=(7, 8))
        batch = BatchRunSpec.from_specs(list(specs))
        assert batch.specs() == specs
        results = batch.execute()
        assert [r.summary for r in results] == [
            spec.execute().summary for spec in specs
        ]


class TestSweepGridWireFormat:
    """``to_dict``/``from_dict`` — the service's submission format."""

    def test_round_trip_preserves_specs(self):
        grid = SweepGrid(
            patterns=("I", "II"),
            scenarios=(("surge-3x3", {"load": 1.2}),),
            controllers=["util-bp", ("cap-bp", {"period": 18.0})],
            seeds=(1, 2),
            engines=("meso", "meso-counts"),
            durations=(120.0,),
        )
        rebuilt = SweepGrid.from_dict(grid.to_dict())
        assert rebuilt.specs() == grid.specs()
        assert rebuilt.to_dict() == grid.to_dict()

    def test_wire_format_survives_json(self):
        import json

        grid = SweepGrid(
            scenarios=(("tidal-3x3", {"load": 0.8}),),
            durations=(60.0,),
        )
        payload = json.loads(json.dumps(grid.to_dict()))
        assert SweepGrid.from_dict(payload).specs() == grid.specs()

    def test_from_dict_accepts_hand_written_variants(self):
        grid = SweepGrid.from_dict(
            {
                "scenarios": ["steady-4x4"],  # bare string entry
                "controllers": [
                    "util-bp",
                    ["cap-bp", {"period": 16}],  # mapping params
                ],
                "seeds": [3],
                "durations": [60.0],
            }
        )
        specs = grid.specs()
        assert len(specs) == 2
        assert {s.controller for s in specs} == {"util-bp", "cap-bp"}
        assert all(s.pattern == "steady-4x4" for s in specs)

    def test_every_key_optional(self):
        grid = SweepGrid.from_dict({})
        (spec,) = grid.specs()
        assert spec.pattern == "I"
        assert spec.controller == "util-bp"

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep-grid key"):
            SweepGrid.from_dict({"patterns": ["I"], "speed": [1]})

    def test_invalid_axis_values_still_validated(self):
        with pytest.raises(ValueError, match="unknown engine"):
            SweepGrid.from_dict({"engines": ["warp-drive"]})


class TestCacheDirDeprecation:
    """``cache_dir`` is a deprecated alias of the canonical ``store``."""

    def test_pool_warns_but_still_works(self, tmp_path):
        spec = RunSpec(**QUICK)
        with pytest.warns(DeprecationWarning, match="cache_dir"):
            pool = ExperimentPool(cache_dir=tmp_path)
        pool.run_one(spec)
        assert (tmp_path / "results.sqlite").is_file()
        warm = ExperimentPool(store=tmp_path / "results.sqlite")
        warm.run_one(spec)
        assert warm.stats.cache_hits == 1  # same store file either way

    def test_store_keyword_does_not_warn(self, tmp_path):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ExperimentPool(store=tmp_path / "s.sqlite")

    def test_store_wins_over_cache_dir(self, tmp_path):
        with pytest.warns(DeprecationWarning):
            pool = ExperimentPool(
                cache_dir=tmp_path / "legacy",
                store=tmp_path / "canonical.sqlite",
            )
        pool.run_one(RunSpec(**QUICK))
        assert (tmp_path / "canonical.sqlite").is_file()
        assert not (tmp_path / "legacy").exists()
