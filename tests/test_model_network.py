"""Tests for repro.model.network and repro.model.grid."""

import pytest

from repro.model.geometry import Direction
from repro.model.grid import (
    build_grid_network,
    entry_road_id,
    exit_road_id,
    grid_node_id,
    internal_road_id,
)
from repro.model.network import BOUNDARY


class TestGridBuilder:
    def test_paper_grid_dimensions(self, grid3x3):
        assert len(grid3x3.intersections) == 9
        # 24 internal (12 adjacent pairs x 2 directions) + 12 in + 12 out.
        assert len(grid3x3.roads) == 48
        assert len(grid3x3.entry_roads()) == 12
        assert len(grid3x3.exit_roads()) == 12
        assert len(grid3x3.internal_roads()) == 24

    def test_single_intersection_grid(self, single_network):
        assert len(single_network.intersections) == 1
        assert len(single_network.entry_roads()) == 4
        assert len(single_network.exit_roads()) == 4

    def test_corner_has_two_boundary_sides(self, grid3x3):
        j00 = grid3x3.intersections["J00"]
        entries = [r for r in j00.in_roads if r.startswith("IN:")]
        assert sorted(entries) == ["IN:N@J00", "IN:W@J00"]

    def test_center_has_no_boundary_roads(self, grid3x3):
        j11 = grid3x3.intersections["J11"]
        assert not any(r.startswith("IN:") for r in j11.in_roads)
        assert not any(r.startswith("OUT:") for r in j11.out_roads)

    def test_internal_roads_shared(self, grid3x3):
        road_id = internal_road_id("J00", "J01")
        assert road_id in grid3x3.intersections["J00"].out_roads
        assert road_id in grid3x3.intersections["J01"].in_roads

    def test_capacity_applied(self):
        network = build_grid_network(2, 2, capacity=50)
        road_id = internal_road_id("J00", "J01")
        assert network.roads[road_id].capacity == 50

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            build_grid_network(0, 3)

    def test_node_id_helpers(self):
        assert grid_node_id(1, 2) == "J12"
        assert entry_road_id(Direction.N, "J01") == "IN:N@J01"
        assert exit_road_id(Direction.S, "J21") == "OUT:S@J21"
        with pytest.raises(ValueError):
            grid_node_id(-1, 0)


class TestNetworkQueries:
    def test_downstream_upstream(self, grid3x3):
        road_id = internal_road_id("J00", "J01")
        assert grid3x3.downstream_intersection(road_id).node_id == "J01"
        assert grid3x3.upstream_intersection(road_id).node_id == "J00"

    def test_boundary_road_endpoints(self, grid3x3):
        assert grid3x3.upstream_intersection("IN:N@J01") is None
        assert grid3x3.downstream_intersection("OUT:N@J01") is None
        assert grid3x3.road_origin["IN:N@J01"] == BOUNDARY

    def test_movements_of_exit_road_empty(self, grid3x3):
        assert grid3x3.movements_of("OUT:N@J01") == []

    def test_movements_of_entry_road(self, grid3x3):
        assert len(grid3x3.movements_of("IN:N@J01")) == 3

    def test_route_next_valid(self, grid3x3):
        nxt = grid3x3.route_next("IN:N@J01", internal_road_id("J01", "J11"))
        assert nxt == internal_road_id("J01", "J11")

    def test_route_next_invalid_movement(self, grid3x3):
        with pytest.raises(ValueError):
            grid3x3.route_next("IN:N@J01", "IN:N@J00")

    def test_route_next_from_exit_road(self, grid3x3):
        with pytest.raises(ValueError):
            grid3x3.route_next("OUT:N@J01", "anything")

    def test_validate_route_straight(self, grid3x3):
        route = ["IN:N@J01", "J01->J11", "J11->J21", "OUT:S@J21"]
        grid3x3.validate_route(route)

    def test_validate_route_must_end_at_exit(self, grid3x3):
        with pytest.raises(ValueError):
            grid3x3.validate_route(["IN:N@J01", "J01->J11"])

    def test_validate_route_unknown_road(self, grid3x3):
        with pytest.raises(ValueError):
            grid3x3.validate_route(["ghost"])

    def test_validate_route_empty(self, grid3x3):
        with pytest.raises(ValueError):
            grid3x3.validate_route([])

    def test_total_capacity(self):
        network = build_grid_network(1, 1, capacity=10, boundary_capacity=10)
        assert network.total_capacity() == 8 * 10
