"""Tests for repro.experiments — patterns, scenarios, runner."""

import pytest

from repro.experiments.patterns import (
    MIXED_SEGMENT_DURATION,
    PATTERN_NAMES,
    TURNING,
    arrival_schedule,
    interarrival_times,
    pattern_description,
)
from repro.experiments.runner import build_engine, run_scenario
from repro.scenarios.core import DEFAULT_DURATIONS, build_scenario
from repro.model.geometry import Direction
from repro.model.phases import TRANSITION_PHASE_INDEX


class TestPatterns:
    def test_table1_values(self):
        assert TURNING.right[Direction.N] == 0.4
        assert TURNING.left[Direction.N] == 0.2
        assert TURNING.right[Direction.E] == 0.3
        assert TURNING.left[Direction.E] == 0.3
        assert TURNING.right[Direction.S] == 0.4
        assert TURNING.left[Direction.S] == 0.3
        assert TURNING.right[Direction.W] == 0.3
        assert TURNING.left[Direction.W] == 0.4

    def test_table2_values(self):
        assert interarrival_times("I") == {
            Direction.N: 3.0,
            Direction.E: 5.0,
            Direction.S: 7.0,
            Direction.W: 9.0,
        }
        assert interarrival_times("II")[Direction.W] == 6.0
        assert interarrival_times("III") == {
            Direction.N: 3.0,
            Direction.E: 7.0,
            Direction.S: 5.0,
            Direction.W: 9.0,
        }
        assert interarrival_times("IV")[Direction.N] == 3.0
        assert interarrival_times("IV")[Direction.E] == 9.0

    def test_descriptions(self):
        assert pattern_description("I") == "adjacent heavy"
        assert pattern_description("II") == "uniform"
        assert pattern_description("III") == "opposite heavy"
        assert pattern_description("IV") == "single heavy"

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            interarrival_times("V")
        with pytest.raises(ValueError):
            pattern_description("V")

    def test_constant_schedule_rate(self):
        schedule = arrival_schedule("I", Direction.N)
        assert schedule.rate_at(0) == pytest.approx(1 / 3)

    def test_mixed_schedule_segments(self):
        schedule = arrival_schedule("mixed", Direction.N)
        # Pattern sequence I, II, III, IV: north rates 1/3, 1/6, 1/3, 1/3.
        assert schedule.rate_at(0) == pytest.approx(1 / 3)
        assert schedule.rate_at(MIXED_SEGMENT_DURATION) == pytest.approx(1 / 6)
        assert schedule.rate_at(2 * MIXED_SEGMENT_DURATION) == pytest.approx(1 / 3)

    def test_mixed_schedule_custom_segments(self):
        schedule = arrival_schedule("mixed", Direction.E, segment_duration=100)
        assert schedule.rate_at(150) == pytest.approx(1 / 6)


class TestScenario:
    def test_paper_defaults(self):
        scenario = build_scenario("I", seed=0)
        assert len(scenario.network.intersections) == 9
        assert len(scenario.demand) == 12
        assert scenario.default_duration == DEFAULT_DURATIONS["I"]

    def test_mixed_duration(self):
        scenario = build_scenario("mixed", seed=0, mixed_segment_duration=100)
        assert scenario.default_duration == 400

    def test_demand_matches_entry_sides(self):
        scenario = build_scenario("I", seed=0)
        for road_id, schedule in scenario.demand.items():
            side = Direction(road_id[3])
            assert schedule.rate_at(0) == pytest.approx(
                1 / interarrival_times("I")[side]
            )

    def test_demand_scale(self):
        scenario = build_scenario("II", seed=0, demand_scale=2.0)
        for schedule in scenario.demand.values():
            assert schedule.rate_at(0) == pytest.approx(2 / 6)

    def test_bad_pattern_rejected(self):
        with pytest.raises(ValueError):
            build_scenario("X", seed=0)

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            build_scenario("I", seed=0, demand_scale=0.0)

    def test_small_grid_variant(self):
        scenario = build_scenario("II", seed=0, rows=2, cols=2)
        assert len(scenario.network.intersections) == 4
        assert len(scenario.demand) == 8

    def test_pattern_names_complete(self):
        assert set(PATTERN_NAMES) == {"I", "II", "III", "IV", "mixed"}


class TestRunner:
    def test_engines_registered(self):
        scenario = build_scenario("II", seed=0, rows=1, cols=1)
        assert build_engine(scenario, "meso") is not None
        assert build_engine(scenario, "micro") is not None
        with pytest.raises(ValueError):
            build_engine(scenario, "quantum")

    def test_run_produces_summary(self):
        scenario = build_scenario("II", seed=1, rows=1, cols=1)
        result = run_scenario(scenario, controller="util-bp", duration=120)
        assert result.duration == 120
        assert result.summary.vehicles_entered > 0

    def test_paired_runs_same_demand(self):
        """Both controllers must face identical arrivals (same seed)."""
        a = run_scenario(
            build_scenario("II", seed=7, rows=1, cols=1),
            controller="util-bp",
            duration=150,
        )
        b = run_scenario(
            build_scenario("II", seed=7, rows=1, cols=1),
            controller="fixed-time",
            controller_params={"period": 10},
            duration=150,
        )
        assert a.summary.vehicles_entered == b.summary.vehicles_entered

    def test_phase_trace_recording(self):
        result = run_scenario(
            build_scenario("II", seed=1, rows=1, cols=1),
            controller="fixed-time",
            controller_params={"period": 10},
            duration=100,
            record_phases=("J00",),
        )
        trace = result.phase_traces["J00"]
        assert trace.switch_count() > 0

    def test_queue_trace_recording(self):
        result = run_scenario(
            build_scenario("II", seed=1, rows=1, cols=1),
            controller="util-bp",
            duration=100,
            record_queues=(("J00", "IN:N@J00"),),
            queue_sample_interval=10.0,
        )
        trace = result.queue_traces[("J00", "IN:N@J00")]
        assert len(trace.series) == 10

    def test_phase_trace_tolerates_missing_decision(self, monkeypatch):
        """A controller omitting a node records amber, like the plant."""
        import repro.experiments.runner as runner_module

        real = runner_module.make_network_controller

        def partial(name, network, **kwargs):
            controller = real(name, network, **kwargs)

            class DropsJ00:
                def decide(self, observations):
                    decisions = dict(controller.decide(observations))
                    decisions.pop("J00", None)
                    return decisions

            return DropsJ00()

        monkeypatch.setattr(
            runner_module, "make_network_controller", partial
        )
        result = run_scenario(
            build_scenario("II", seed=1, rows=1, cols=1),
            controller="util-bp",
            duration=30,
            record_phases=("J00",),
        )
        assert set(result.phase_traces["J00"].phases) == {
            TRANSITION_PHASE_INDEX
        }

    def test_queue_samples_snap_to_fixed_grid(self):
        """No drift when the mini-slot does not divide the interval.

        With a 2 s mini-slot and a 5 s interval, each grid point
        (0, 5, 10, ...) must be sampled at the first step on or after
        it — never re-anchored to the previous sample time (which
        would degrade the cadence to every 6 s).
        """
        result = run_scenario(
            build_scenario("II", seed=1, rows=1, cols=1),
            controller="util-bp",
            duration=60,
            mini_slot=2.0,
            record_queues=(("J00", "IN:N@J00"),),
            queue_sample_interval=5.0,
        )
        times = result.queue_traces[("J00", "IN:N@J00")].series.times
        assert len(times) == 12  # one sample per grid point in [0, 60)
        for index, time in enumerate(times):
            assert 0.0 <= time - 5.0 * index < 2.0

    def test_utilization_collected(self):
        result = run_scenario(
            build_scenario("II", seed=1, rows=1, cols=1),
            controller="util-bp",
            duration=100,
        )
        merged = result.network_utilization()
        assert merged.green_time + merged.amber_time == pytest.approx(100.0)

    def test_bad_duration_rejected(self):
        with pytest.raises(ValueError):
            run_scenario(
                build_scenario("II", seed=1, rows=1, cols=1),
                duration=-5,
            )

    def test_micro_engine_run(self):
        result = run_scenario(
            build_scenario("II", seed=1, rows=1, cols=1),
            controller="util-bp",
            duration=60,
            engine="micro",
        )
        assert result.summary.vehicles_entered > 0


class TestRunConfigKeyword:
    """``config=RunConfig(...)`` as the single validated knob surface."""

    def test_config_object_drives_the_run(self):
        from repro.experiments.runner import RunConfig

        scenario = build_scenario("I", seed=3)
        config = RunConfig(controller="util-bp", duration=60.0)
        via_config = run_scenario(scenario, config=config)
        via_knobs = run_scenario(
            build_scenario("I", seed=3), controller="util-bp", duration=60.0
        )
        assert via_config == via_knobs

    def test_config_cannot_mix_with_loose_knobs(self):
        from repro.experiments.runner import RunConfig

        scenario = build_scenario("I", seed=1)
        with pytest.raises(TypeError, match="cannot be combined"):
            run_scenario(
                scenario, config=RunConfig(), duration=60.0
            )

    def test_config_must_be_a_runconfig(self):
        scenario = build_scenario("I", seed=1)
        with pytest.raises(TypeError, match="must be a RunConfig"):
            run_scenario(scenario, config={"controller": "util-bp"})

    def test_batch_accepts_config(self):
        from repro.experiments.runner import RunConfig, run_scenario_batch

        scenarios = [build_scenario("I", seed=s) for s in (1, 2)]
        config = RunConfig(controller="util-bp", duration=60.0,
                           engine="meso-vec")
        batch = run_scenario_batch(scenarios, config=config)
        assert len(batch) == 2
        singles = [
            run_scenario(build_scenario("I", seed=s), config=config)
            for s in (1, 2)
        ]
        assert [r.summary for r in batch] == [r.summary for r in singles]

    def test_runconfig_exported_from_experiments_package(self):
        from repro.experiments import RunConfig, run_scenario_batch  # noqa: F401
