"""Tests for repro.control.factory."""

import pytest

from repro.control.cap_bp import CapBpController
from repro.control.factory import (
    CONTROLLER_NAMES,
    make_controller,
    make_network_controller,
)
from repro.control.fixed_time import FixedTimeController
from repro.control.original_bp import OriginalBpController
from repro.core.util_bp import UtilBpController


class TestMakeController:
    def test_names_registered(self):
        assert set(CONTROLLER_NAMES) == {
            "util-bp",
            "cap-bp",
            "original-bp",
            "fixed-time",
        }

    def test_util_bp(self, intersection):
        ctrl = make_controller("util-bp", intersection)
        assert isinstance(ctrl, UtilBpController)

    def test_util_bp_with_config_params(self, intersection):
        ctrl = make_controller(
            "util-bp", intersection, alpha=-3.0, beta=-4.0, keep_margin=2.0
        )
        assert ctrl.config.alpha == -3.0
        assert ctrl.config.keep_margin == 2.0

    def test_util_bp_unknown_param_rejected(self, intersection):
        with pytest.raises(TypeError):
            make_controller("util-bp", intersection, period=10)

    @pytest.mark.parametrize(
        "name, cls",
        [
            ("cap-bp", CapBpController),
            ("original-bp", OriginalBpController),
            ("fixed-time", FixedTimeController),
        ],
    )
    def test_fixed_slot_controllers(self, intersection, name, cls):
        ctrl = make_controller(name, intersection, period=16)
        assert isinstance(ctrl, cls)
        assert ctrl.period == 16

    @pytest.mark.parametrize("name", ["cap-bp", "original-bp", "fixed-time"])
    def test_period_required(self, intersection, name):
        with pytest.raises(TypeError):
            make_controller(name, intersection)

    def test_unknown_name_rejected(self, intersection):
        with pytest.raises(ValueError, match="unknown controller"):
            make_controller("magic", intersection)


class TestMakeNetworkController:
    def test_covers_all_intersections(self, grid3x3):
        net_ctrl = make_network_controller("cap-bp", grid3x3, period=16)
        assert set(net_ctrl.controllers) == set(grid3x3.intersections)

    def test_controllers_independent(self, grid3x3):
        net_ctrl = make_network_controller("util-bp", grid3x3)
        instances = list(net_ctrl.controllers.values())
        assert len(set(map(id, instances))) == len(instances)
