"""Tests for repro.util.rng — deterministic named RNG streams."""

import numpy as np
import pytest

from repro.util.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(-1, "a")

    def test_result_fits_64_bits(self):
        assert 0 <= derive_seed(7, "stream") < 2**64


class TestRngStreams:
    def test_same_name_same_generator(self):
        streams = RngStreams(seed=1)
        assert streams.get("x") is streams.get("x")

    def test_streams_independent_of_creation_order(self):
        a = RngStreams(seed=5)
        b = RngStreams(seed=5)
        # Warm up an unrelated stream in `a` only.
        a.get("other").random(100)
        assert a.get("target").random() == b.get("target").random()

    def test_reproducible_across_instances(self):
        values_1 = RngStreams(seed=9).get("s").random(5)
        values_2 = RngStreams(seed=9).get("s").random(5)
        assert np.array_equal(values_1, values_2)

    def test_different_seeds_differ(self):
        v1 = RngStreams(seed=1).get("s").random()
        v2 = RngStreams(seed=2).get("s").random()
        assert v1 != v2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RngStreams(seed=1).get("")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngStreams(seed=-3)

    def test_spawn_namespacing(self):
        parent = RngStreams(seed=3)
        child_a = parent.spawn("ns")
        child_b = RngStreams(seed=3).spawn("ns")
        assert child_a.get("s").random() == child_b.get("s").random()

    def test_spawn_differs_from_parent(self):
        parent = RngStreams(seed=3)
        child = parent.spawn("ns")
        assert parent.get("s").random() != child.get("s").random()

    def test_names_sorted(self):
        streams = RngStreams(seed=0)
        streams.get("b")
        streams.get("a")
        assert streams.names() == ["a", "b"]

    def test_repr_mentions_seed(self):
        assert "seed=4" in repr(RngStreams(seed=4))
