"""Tests for repro.core.config."""

import pytest

from repro.core.config import UtilBpConfig


class TestUtilBpConfig:
    def test_paper_defaults(self):
        config = UtilBpConfig()
        assert config.transition_duration == 4.0
        assert config.alpha == -1.0
        assert config.beta == -2.0
        assert config.mini_slot == 1.0
        assert config.keep_margin == 0.0

    def test_paper_ordering_eq9(self):
        assert UtilBpConfig().paper_ordering()
        assert not UtilBpConfig(alpha=-2.0, beta=-1.0).paper_ordering()

    def test_reversed_order_admissible(self):
        # The paper notes beta > alpha is admissible; only negativity
        # is enforced.
        config = UtilBpConfig(alpha=-3.0, beta=-1.0)
        assert config.beta > config.alpha

    @pytest.mark.parametrize("alpha", [0.0, 0.5])
    def test_non_negative_alpha_rejected(self, alpha):
        with pytest.raises(ValueError):
            UtilBpConfig(alpha=alpha)

    @pytest.mark.parametrize("beta", [0.0, 1.0])
    def test_non_negative_beta_rejected(self, beta):
        with pytest.raises(ValueError):
            UtilBpConfig(beta=beta)

    def test_bad_transition_rejected(self):
        with pytest.raises(ValueError):
            UtilBpConfig(transition_duration=0.0)

    def test_bad_mini_slot_rejected(self):
        with pytest.raises(ValueError):
            UtilBpConfig(mini_slot=-1.0)

    def test_negative_keep_margin_rejected(self):
        with pytest.raises(ValueError):
            UtilBpConfig(keep_margin=-1.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            UtilBpConfig().alpha = -5.0
