"""Tests for repro.micro.lane — lane dynamics and detectors."""

import pytest

from repro.micro.lane import Lane
from repro.micro.params import KraussParams
from repro.micro.vehicle import MicroVehicle


def make_lane(length=300.0, speed=13.89):
    return Lane("lane", length, speed, KraussParams(sigma=0.0))


def vehicle(vid=0, position=0.0, speed=0.0):
    return MicroVehicle(
        vehicle_id=vid, route=["a", "b"], position=position, speed=speed
    )


class TestLaneDynamics:
    def test_free_vehicle_accelerates_to_limit(self):
        lane = make_lane()
        v = vehicle(position=0.0, speed=0.0)
        lane.vehicles.append(v)
        for _ in range(20):
            lane.step(0.5, open_end=True, rng=None)
        assert v.speed == pytest.approx(13.89, abs=0.1)

    def test_red_light_stops_front_vehicle(self):
        lane = make_lane(length=100.0)
        v = vehicle(position=50.0, speed=13.89)
        lane.vehicles.append(v)
        for _ in range(60):
            lane.step(0.5, open_end=False, rng=None)
        assert v.position <= 100.0
        assert v.speed < 0.1

    def test_green_light_releases_vehicle(self):
        lane = make_lane(length=100.0)
        v = vehicle(position=99.0, speed=10.0)
        lane.vehicles.append(v)
        crossed = lane.step(0.5, open_end=True, rng=None)
        assert crossed == [v]
        assert v.position >= 0.0  # overshoot past the line
        assert not lane.vehicles

    def test_followers_keep_spacing(self):
        lane = make_lane(length=200.0)
        leader = vehicle(0, position=50.0, speed=0.0)
        follower = vehicle(1, position=30.0, speed=13.0)
        lane.vehicles.extend([leader, follower])
        for _ in range(40):
            lane.step(0.5, open_end=False, rng=None)
        gap = leader.position - KraussParams().length - follower.position
        assert gap >= 0.0

    def test_no_collision_in_queue_discharge(self):
        lane = make_lane(length=300.0)
        params = KraussParams()
        for i in range(10):
            lane.vehicles.append(
                vehicle(i, position=300.0 - i * params.jam_spacing, speed=0.0)
            )
        for _ in range(200):
            lane.step(0.5, open_end=True, rng=None)
            positions = [v.position for v in lane.vehicles]
            assert positions == sorted(positions, reverse=True)
            for front, back in zip(positions, positions[1:]):
                assert front - back >= params.length - 1e-6

    def test_discharge_headway_realistic(self):
        """A standing queue discharges at roughly 0.4-0.8 veh/s."""
        lane = make_lane(length=300.0)
        params = KraussParams()
        for i in range(20):
            lane.vehicles.append(
                vehicle(i, position=300.0 - i * params.jam_spacing, speed=0.0)
            )
        crossed = 0
        for _ in range(60):  # 30 s of green
            crossed += len(lane.step(0.5, open_end=True, rng=None))
        assert 10 <= crossed <= 20


class TestDetectors:
    def test_halting_count(self):
        lane = make_lane()
        lane.vehicles.append(vehicle(0, position=299.0, speed=0.0))
        lane.vehicles.append(vehicle(1, position=100.0, speed=10.0))
        assert lane.halting_count(0.1) == 1

    def test_detector_counts_moving_vehicles_near_line(self):
        lane = make_lane(length=300.0)
        lane.vehicles.append(vehicle(0, position=290.0, speed=10.0))
        assert lane.detector_count(40.0, 0.1) == 1
        assert lane.detector_count(5.0, 0.1) == 0

    def test_detector_counts_halted_anywhere(self):
        lane = make_lane(length=300.0)
        lane.vehicles.append(vehicle(0, position=10.0, speed=0.0))
        assert lane.detector_count(40.0, 0.1) == 1

    def test_spillback_detection(self):
        lane = make_lane(length=300.0)
        lane.vehicles.append(vehicle(0, position=5.0, speed=0.0))
        assert lane.spillback_halted(20.0, 0.1)

    def test_no_spillback_when_moving(self):
        lane = make_lane(length=300.0)
        lane.vehicles.append(vehicle(0, position=5.0, speed=10.0))
        assert not lane.spillback_halted(20.0, 0.1)


class TestEntry:
    def test_spawn_room(self):
        lane = make_lane()
        assert lane.has_spawn_room()
        lane.vehicles.append(vehicle(0, position=2.0, speed=0.0))
        assert not lane.has_spawn_room()

    def test_entry_room_uses_junction_interior(self):
        lane = make_lane()
        lane.vehicles.append(vehicle(0, position=-5.0, speed=5.0))
        assert not lane.has_entry_room()

    def test_push_entry_from_junction_negative_position(self):
        lane = make_lane()
        v = vehicle(0, position=0.5, speed=10.0)
        lane.push_entry(v, from_junction=True)
        assert v.position == pytest.approx(0.5 - lane.junction_length)

    def test_push_entry_clamps_to_leader(self):
        lane = make_lane()
        leader = vehicle(0, position=1.0, speed=0.0)
        lane.vehicles.append(leader)
        # Overshoot 8 m puts the entrant at -4 m, past the admissible
        # ceiling of 1 - 7.5 = -6.5 m: it must be clamped and slowed.
        v = vehicle(1, position=8.0, speed=13.0)
        lane.push_entry(v, from_junction=True)
        assert v.position <= leader.position - lane.params.jam_spacing
        assert v.speed == 0.0

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Lane("l", 0.0, 13.89, KraussParams())
        with pytest.raises(ValueError):
            Lane("l", 100.0, 0.0, KraussParams())
