"""Tests for repro.micro.krauss — the car-following model."""

import numpy as np
import pytest

from repro.micro.krauss import next_speed, safe_speed
from repro.micro.params import KraussParams

P = KraussParams()


class TestSafeSpeed:
    def test_zero_gap_full_stop(self):
        assert safe_speed(0.0, 10.0, 10.0, P) == 0.0

    def test_negative_gap_full_stop(self):
        assert safe_speed(-3.0, 10.0, 10.0, P) == 0.0

    def test_large_gap_allows_speed(self):
        assert safe_speed(500.0, 10.0, 10.0, P) > 10.0

    def test_standing_leader_close(self):
        # One jam spacing of usable gap: may creep, not race.
        v = safe_speed(P.jam_spacing, 0.0, 0.0, P)
        assert 0.0 < v < 10.0

    def test_monotone_in_gap(self):
        speeds = [safe_speed(g, 5.0, 5.0, P) for g in (5, 10, 20, 40)]
        assert speeds == sorted(speeds)

    def test_moving_leader_with_ample_gap_allows_following(self):
        # With a large gap, the safe speed at least matches the leader's.
        for vl in (5.0, 10.0, 13.0):
            assert safe_speed(200.0, vl, vl, P) >= vl


class TestNextSpeed:
    def test_accelerates_on_free_road(self):
        v = next_speed(0.0, 13.89, None, 0.0, 1.0, P, rng=None)
        assert v == pytest.approx(P.accel)

    def test_respects_speed_limit(self):
        v = next_speed(13.5, 13.89, None, 0.0, 1.0, P, rng=None)
        assert v <= 13.89

    def test_brakes_behind_standing_leader(self):
        v = next_speed(10.0, 13.89, 3.0, 0.0, 1.0, P, rng=None)
        assert v < 10.0

    def test_never_negative(self):
        v = next_speed(0.5, 13.89, 0.0, 0.0, 1.0, P, rng=None)
        assert v >= 0.0

    def test_braking_bounded_by_decel(self):
        v = next_speed(13.0, 13.89, 0.5, 0.0, 1.0, P, rng=None)
        assert v >= 13.0 - P.decel * 1.0

    def test_dawdling_reduces_speed(self):
        rng = np.random.default_rng(0)
        deterministic = next_speed(5.0, 13.89, None, 0.0, 1.0, P, rng=None)
        dawdled = [
            next_speed(5.0, 13.89, None, 0.0, 1.0, P, rng=rng)
            for _ in range(50)
        ]
        assert all(v <= deterministic for v in dawdled)
        assert any(v < deterministic for v in dawdled)

    def test_sigma_zero_is_deterministic(self):
        params = KraussParams(sigma=0.0)
        rng = np.random.default_rng(0)
        a = next_speed(5.0, 13.89, None, 0.0, 1.0, params, rng=rng)
        b = next_speed(5.0, 13.89, None, 0.0, 1.0, params, rng=rng)
        assert a == b


class TestParams:
    def test_jam_spacing(self):
        assert P.jam_spacing == 7.5

    def test_capacity_consistency_with_paper(self):
        # 300 m road, 3 lanes, 7.5 m per vehicle -> 120 = paper's W.
        assert 3 * (300.0 / P.jam_spacing) == 120

    def test_bad_sigma_rejected(self):
        with pytest.raises(ValueError):
            KraussParams(sigma=1.5)

    def test_bad_accel_rejected(self):
        with pytest.raises(ValueError):
            KraussParams(accel=0.0)
