"""Decision-level contract of the batched controllers.

:mod:`repro.control.batch` promises that ``decide_batch`` is
decision-for-decision identical to the serial controller of the same
name and parameters — same comparisons, same float evaluation order,
same tie-breaks.  This suite pins that contract directly at the
controller layer:

* lockstep parity — a B=1 meso-vec engine is stepped for hundreds of
  mini-slots while a serial controller (fed ``QueueObservation`` maps)
  and the batched controller (fed the engine's arrays) must emit the
  same phase for every node at every step, for all three batched
  algorithms;
* batch-width independence of the *decisions* themselves (not just of
  the end-of-run books, which the engine parity suite covers);
* the registry, the protocol, ``reset``, and the constructor/shape
  validation;
* the runner's fallback path: an un-batchable controller must still
  produce results identical to the single runs, and must say so once
  on stderr.
"""

import pytest

from repro.control.batch import (
    BatchCapBpController,
    BatchNetworkController,
    BatchOriginalBpController,
    BatchUtilBpController,
)
from repro.control.factory import make_network_controller
from repro.core.engine import (
    batch_controller_names,
    build_batch_controller,
    build_batch_engine,
    has_batch_controller,
)
from repro.model.grid import build_grid_network
from repro.scenarios import build_named_scenario

#: (controller name, parameters) triples with batched implementations.
CONTROLLERS = (
    ("util-bp", {}),
    ("cap-bp", {"period": 16.0}),
    ("original-bp", {"period": 16.0}),
)

#: Congested and direction-skewed shapes: the beta (spillback) and
#: alpha (empty movement) branches both fire within the horizon.
SCENARIOS = ("surge-4x4", "asymmetric-3x3")

STEPS = 250


def _as_map(array, node_ids, b=0):
    return {node: int(array[b, i]) for i, node in enumerate(node_ids)}


class TestLockstepParity:
    @pytest.mark.parametrize("scenario_name", SCENARIOS)
    @pytest.mark.parametrize(
        "controller,params", CONTROLLERS, ids=[c for c, _ in CONTROLLERS]
    )
    def test_batched_equals_serial_every_step(
        self, scenario_name, controller, params
    ):
        """One engine, two controllers: identical decisions, every slot."""
        scenario = build_named_scenario(scenario_name, seed=7)
        sim = build_batch_engine([scenario], "meso-vec")
        serial = make_network_controller(
            controller, scenario.network, **params
        )
        batched = build_batch_controller(
            controller, scenario.network, 1, **params
        )
        node_ids = batched.node_ids
        for step in range(STEPS):
            serial_decisions = serial.decide(sim.observations()[0])
            array = batched.decide_batch(sim.controller_arrays())
            assert _as_map(array, node_ids) == serial_decisions, (
                scenario_name,
                controller,
                step,
            )
            sim.step(1.0, array)


class TestDecisionBatchIndependence:
    @pytest.mark.parametrize(
        "controller,params", CONTROLLERS, ids=[c for c, _ in CONTROLLERS]
    )
    def test_first_column_matches_b1(self, controller, params):
        """Replication 0 decides identically whether B is 1 or 4."""
        seeds = (7, 8, 9, 10)
        scenarios = [
            build_named_scenario("surge-4x4", seed=s) for s in seeds
        ]
        wide = build_batch_engine(scenarios, "meso-vec")
        narrow = build_batch_engine(scenarios[:1], "meso-vec")
        network = scenarios[0].network
        ctrl_wide = build_batch_controller(
            controller, network, len(seeds), **params
        )
        ctrl_narrow = build_batch_controller(controller, network, 1, **params)
        for step in range(150):
            a_wide = ctrl_wide.decide_batch(wide.controller_arrays())
            a_narrow = ctrl_narrow.decide_batch(narrow.controller_arrays())
            assert (a_wide[0] == a_narrow[0]).all(), (controller, step)
            wide.step(1.0, a_wide)
            narrow.step(1.0, a_narrow)


class TestControllerPlumbing:
    def test_registry_names(self):
        assert set(batch_controller_names()) >= {
            "util-bp",
            "cap-bp",
            "original-bp",
        }
        assert has_batch_controller("util-bp")
        # fixed-time is open-loop: deliberately not batched.
        assert not has_batch_controller("fixed-time")

    def test_unknown_name_rejected(self):
        network = build_grid_network(1, 1)
        with pytest.raises(ValueError, match="unknown batch controller"):
            build_batch_controller("no-such-controller", network, 1)

    def test_protocol_conformance(self):
        network = build_grid_network(2, 2)
        for cls, kwargs in (
            (BatchUtilBpController, {}),
            (BatchCapBpController, {"period": 16.0}),
            (BatchOriginalBpController, {"period": 16.0}),
        ):
            controller = cls(network, 3, **kwargs)
            assert isinstance(controller, BatchNetworkController)
            assert controller.batch_size == 3
            assert len(controller.node_ids) == 4

    def test_reset_restores_initial_decisions(self):
        scenario = build_named_scenario("steady-3x3", seed=5)
        controller = build_batch_controller("util-bp", scenario.network, 1)

        def first_decisions():
            sim = build_batch_engine(
                [build_named_scenario("steady-3x3", seed=5)], "meso-vec"
            )
            trace = []
            for _ in range(60):
                array = controller.decide_batch(sim.controller_arrays())
                trace.append(array.copy())
                sim.step(1.0, array)
            return trace

        before = first_decisions()
        controller.reset()
        after = first_decisions()
        assert all((a == b).all() for a, b in zip(before, after))

    def test_shape_mismatch_rejected(self):
        scenario = build_named_scenario("steady-3x3", seed=5)
        controller = build_batch_controller("util-bp", scenario.network, 4)
        sim = build_batch_engine(
            [build_named_scenario("steady-3x3", seed=5)], "meso-vec"
        )
        with pytest.raises(ValueError, match="does not match"):
            controller.decide_batch(sim.controller_arrays())

    def test_invalid_batch_size_rejected(self):
        network = build_grid_network(1, 1)
        with pytest.raises(ValueError, match="batch_size"):
            BatchUtilBpController(network, 0)

    def test_unknown_util_bp_parameter_rejected(self):
        network = build_grid_network(1, 1)
        with pytest.raises(TypeError, match="unknown util-bp"):
            build_batch_controller("util-bp", network, 1, period=16.0)

    def test_fixed_slot_requires_period(self):
        network = build_grid_network(1, 1)
        with pytest.raises(TypeError, match="period"):
            build_batch_controller("cap-bp", network, 1)


class TestRunnerIntegration:
    def test_batched_path_emits_no_fallback_notice(self, capsys):
        from repro.experiments.runner import run_scenario_batch

        scenarios = [
            build_named_scenario("steady-3x3", seed=s) for s in (5, 6)
        ]
        run_scenario_batch(scenarios, controller="util-bp", duration=60.0)
        assert "falling back" not in capsys.readouterr().err

    def test_fallback_matches_batched_results_and_warns(
        self, capsys, monkeypatch
    ):
        """An un-batchable controller still gets correct (serial) results."""
        import repro.experiments.runner as runner

        scenarios = [
            build_named_scenario("steady-3x3", seed=s) for s in (5, 6)
        ]
        batched = runner.run_scenario_batch(
            scenarios, controller="util-bp", duration=120.0
        )
        monkeypatch.setattr(runner, "has_batch_controller", lambda name: False)
        fallback = runner.run_scenario_batch(
            [build_named_scenario("steady-3x3", seed=s) for s in (5, 6)],
            controller="util-bp",
            duration=120.0,
        )
        err = capsys.readouterr().err
        assert "falling back to per-replication 'util-bp'" in err
        assert fallback == batched
