"""Tests for repro.util.series — time series and ASCII charts."""

import pytest

from repro.util.series import TimeSeries, render_series


class TestTimeSeries:
    def test_append_and_len(self):
        s = TimeSeries("s")
        s.append(0.0, 1.0)
        s.append(1.0, 2.0)
        assert len(s) == 2

    def test_non_monotonic_rejected(self):
        s = TimeSeries("s")
        s.append(5.0, 1.0)
        with pytest.raises(ValueError):
            s.append(4.0, 1.0)

    def test_equal_times_allowed(self):
        s = TimeSeries("s")
        s.append(1.0, 1.0)
        s.append(1.0, 2.0)  # staircase corners need duplicate times
        assert len(s) == 2

    def test_mean(self):
        s = TimeSeries("s")
        for t, v in [(0, 2.0), (1, 4.0)]:
            s.append(t, v)
        assert s.mean() == 3.0

    def test_mean_empty(self):
        assert TimeSeries("s").mean() == 0.0

    def test_max(self):
        s = TimeSeries("s")
        for t, v in [(0, 2.0), (1, 9.0), (2, 4.0)]:
            s.append(t, v)
        assert s.max() == 9.0

    def test_window(self):
        s = TimeSeries("s")
        for t in range(10):
            s.append(float(t), float(t))
        w = s.window(2.0, 5.0)
        assert w.times == [2.0, 3.0, 4.0]

    def test_resample_bucket_average(self):
        s = TimeSeries("s")
        for t, v in [(0.0, 1.0), (0.5, 3.0), (1.0, 10.0)]:
            s.append(t, v)
        r = s.resample(1.0)
        assert r.values[0] == 2.0  # average of 1 and 3
        assert r.values[1] == 10.0

    def test_resample_empty_bucket_repeats(self):
        s = TimeSeries("s")
        s.append(0.0, 5.0)
        s.append(3.0, 7.0)
        r = s.resample(1.0)
        assert r.values[1] == 5.0  # carried forward

    def test_resample_rejects_bad_step(self):
        with pytest.raises(ValueError):
            TimeSeries("s").resample(0.0)

    def test_pairs(self):
        s = TimeSeries("s")
        s.append(1.0, 2.0)
        assert s.pairs() == [(1.0, 2.0)]


class TestRenderSeries:
    def _series(self):
        s = TimeSeries("demo")
        for t in range(20):
            s.append(float(t), float(t % 7))
        return s

    def test_contains_title(self):
        out = render_series([self._series()], title="T")
        assert out.startswith("T")

    def test_contains_legend(self):
        out = render_series([self._series()])
        assert "demo" in out

    def test_empty_series(self):
        out = render_series([TimeSeries("empty")])
        assert "(empty)" in out

    def test_two_series_two_glyphs(self):
        s1, s2 = self._series(), self._series()
        s2.name = "other"
        out = render_series([s1, s2])
        assert "*" in out and "o" in out

    def test_constant_series_no_crash(self):
        s = TimeSeries("flat")
        for t in range(5):
            s.append(float(t), 1.0)
        assert "flat" in render_series([s])
