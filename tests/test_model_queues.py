"""Tests for repro.model.queues — observations and Eq. 2 dynamics."""

import pytest

from repro.model.queues import QueueObservation, queue_dynamics_step
from tests.conftest import make_observation


class TestQueueObservation:
    def test_incoming_total_eq1(self, intersection):
        in_road = intersection.approach_of[list(intersection.approach_of)[0]]
        movements = intersection.movements_from(in_road)
        queues = {m.key: i + 1 for i, m in enumerate(movements)}
        obs = make_observation(intersection, movement_queues=queues)
        assert obs.incoming_total(in_road) == sum(queues.values())

    def test_movement_queue_default_zero(self, intersection):
        obs = make_observation(intersection)
        assert obs.movement_queue("ghost", "road") == 0

    def test_is_full(self, intersection):
        out_road = next(iter(intersection.out_roads))
        obs = make_observation(intersection, out_queues={out_road: 120})
        assert obs.is_full(out_road)

    def test_not_full(self, intersection):
        out_road = next(iter(intersection.out_roads))
        obs = make_observation(intersection, out_queues={out_road: 119})
        assert not obs.is_full(out_road)

    def test_max_capacity_eq7(self, intersection):
        obs = make_observation(intersection)
        assert obs.max_capacity() == 120

    def test_unknown_out_road_raises(self, intersection):
        obs = make_observation(intersection)
        with pytest.raises(KeyError):
            obs.out_queue("ghost")
        with pytest.raises(KeyError):
            obs.capacity("ghost")

    def test_negative_queue_rejected(self):
        with pytest.raises(ValueError):
            QueueObservation(
                time=0.0,
                movement_queues={("a", "b"): -1},
                out_queues={},
                out_capacities={},
            )

    def test_queue_without_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueueObservation(
                time=0.0,
                movement_queues={},
                out_queues={"r": 3},
                out_capacities={},
            )

    def test_empty_capacities_max_capacity_raises(self):
        obs = QueueObservation(0.0, {}, {}, {})
        with pytest.raises(ValueError):
            obs.max_capacity()


class TestQueueDynamics:
    def test_eq2(self):
        assert queue_dynamics_step(queue=5, arrivals=3, served=2) == 6

    def test_drain_to_zero(self):
        assert queue_dynamics_step(queue=2, arrivals=0, served=2) == 0

    def test_overserving_rejected(self):
        with pytest.raises(ValueError):
            queue_dynamics_step(queue=1, arrivals=0, served=2)

    def test_negative_arrivals_rejected(self):
        with pytest.raises(ValueError):
            queue_dynamics_step(queue=1, arrivals=-1, served=0)

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            queue_dynamics_step(queue=1, arrivals=0, served=-1)
