"""Tests for repro.util.tables — ASCII table rendering."""

import pytest

from repro.util.tables import render_table


class TestRenderTable:
    def test_headers_present(self):
        out = render_table(["a", "bb"], [[1, 2]])
        assert "a" in out and "bb" in out

    def test_rows_present(self):
        out = render_table(["x"], [["hello"]])
        assert "hello" in out

    def test_float_formatting(self):
        out = render_table(["v"], [[3.14159]])
        assert "3.14" in out
        assert "3.1416" not in out

    def test_title(self):
        out = render_table(["v"], [[1]], title="My Table")
        assert out.startswith("My Table")

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_column_alignment(self):
        out = render_table(["col"], [["short"], ["much longer cell"]])
        lines = [l for l in out.splitlines() if l.startswith("|")]
        assert len({len(l) for l in lines}) == 1

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out

    def test_no_trailing_newline(self):
        assert not render_table(["a"], [[1]]).endswith("\n")
