"""The versioned public API façade (repro.api)."""

from __future__ import annotations

import re

import pytest

import repro.api as api


class TestFacadeSurface:
    def test_api_version_shape(self):
        assert re.fullmatch(r"\d+\.\d+", api.API_VERSION)

    def test_every_public_name_importable(self):
        for name in api.__all__:
            assert getattr(api, name, None) is not None, (
                f"repro.api.__all__ lists {name!r} but the attribute is "
                f"missing or None"
            )

    def test_all_is_sorted_unique(self):
        assert len(api.__all__) == len(set(api.__all__))

    def test_nothing_private_leaks(self):
        for name in api.__all__:
            assert not name.startswith("_"), f"private name {name!r} in __all__"

    def test_star_import_exposes_exactly_all(self):
        namespace: dict = {}
        exec("from repro.api import *", namespace)  # noqa: S102
        imported = {k for k in namespace if not k.startswith("_")}
        assert imported == set(api.__all__)

    def test_core_surface_present(self):
        # The names downstream code is expected to build on.
        for name in (
            "RunSpec",
            "SweepGrid",
            "RunConfig",
            "RunResult",
            "run_scenario",
            "run_scenario_batch",
            "ResultStore",
            "ExperimentPool",
            "PoolStats",
            "aggregate",
            "serve",
            "ServiceClient",
            "get_logger",
        ):
            assert name in api.__all__

    def test_facade_names_are_canonical_objects(self):
        from repro.experiments.runner import RunConfig as runner_RunConfig
        from repro.orchestration.spec import RunSpec as spec_RunSpec
        from repro.results.store import ResultStore as store_ResultStore

        assert api.RunConfig is runner_RunConfig
        assert api.RunSpec is spec_RunSpec
        assert api.ResultStore is store_ResultStore

    def test_service_wrappers_are_lazy(self):
        import sys

        # Importing repro.api alone must not pull in the service stack
        # (it would create an import cycle and slow every CLI start).
        for module in list(sys.modules):
            if module.startswith("repro.service"):
                del sys.modules[module]
        import importlib

        importlib.reload(api)
        assert not any(
            module.startswith("repro.service") for module in sys.modules
        )
        # ... but the wrappers resolve the real implementations on use.
        client = api.ServiceClient("http://127.0.0.1:1")
        from repro.service.client import ServiceClient as real_client

        assert isinstance(client, real_client)

    def test_create_app_builds_service_app(self, tmp_path):
        app = api.create_app(str(tmp_path / "store.sqlite"))
        from repro.service.app import ServiceApp

        assert isinstance(app, ServiceApp)
        app.manager.stop()

    def test_run_via_facade(self):
        scenario = api.build_scenario("I", seed=1)
        config = api.RunConfig(controller="util-bp", duration=30.0)
        result = api.run_scenario(scenario, config=config)
        assert result.summary.vehicles_entered >= 0

    def test_embedded_version_matches_service_envelope(self, tmp_path):
        from repro.service.app import ServiceApp

        app = ServiceApp(str(tmp_path / "store.sqlite"))
        payload = app._envelope({}, "req-x")
        assert payload["api_version"] == api.API_VERSION
        app.manager.stop()


class TestDeprecatedScenarioShim:
    def test_warning_names_removal_release_and_date(self):
        import importlib
        import sys

        sys.modules.pop("repro.experiments.scenario", None)
        with pytest.warns(DeprecationWarning) as caught:
            importlib.import_module("repro.experiments.scenario")
        text = str(caught[0].message)
        assert "repro 1.2" in text
        assert "2026-12-01" in text
        assert "repro.scenarios.core" in text
