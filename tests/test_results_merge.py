"""``ResultStore.merge_from``: the fleet-execution join.

Merging is keyed by spec content hash and copies rows verbatim, so it
must be idempotent, must refuse divergent payloads unless told how to
resolve them, and must refuse rows written under a different spec
schema version instead of silently stranding them.
"""

import copy

import pytest

from repro.orchestration import RunSpec
from repro.results import MergeError, MergeStats, ResultStore

#: A schema-complete synthetic payload (no simulation needed to test
#: merge bookkeeping).
PAYLOAD = {
    "scenario_name": "merge-test",
    "controller_name": "util-bp",
    "duration": 600.0,
    "summary": {
        "duration": 600.0,
        "vehicles_entered": 100,
        "vehicles_left": 95,
        "average_queuing_time": 42.0,
        "average_travel_time": 120.0,
        "total_queuing_time": 4200.0,
        "max_queuing_time": 300.0,
        "throughput_per_hour": 570.0,
        "delay_mode": "per-vehicle",
    },
    "vehicles_in_network": 5,
    "backlog": 0,
}


def spec(seed: int) -> RunSpec:
    return RunSpec(pattern="I", seed=seed, duration=600.0)


def payload(queuing: float = 42.0) -> dict:
    out = copy.deepcopy(PAYLOAD)
    out["summary"]["average_queuing_time"] = queuing
    return out


def fill(store: ResultStore, seeds, queuing: float = 42.0) -> None:
    for seed in seeds:
        store.put(spec(seed), payload(queuing))


class TestMergeBasics:
    def test_disjoint_sources_union(self, tmp_path):
        a = ResultStore(tmp_path / "a.sqlite")
        b = ResultStore(tmp_path / "b.sqlite")
        dest = ResultStore(tmp_path / "dest.sqlite")
        fill(a, [1, 2])
        fill(b, [3, 4, 5])
        stats = MergeStats()
        stats.merge(dest.merge_from(a))
        stats.merge(dest.merge_from(b))
        assert (stats.inserted, stats.identical, stats.conflicts) == (5, 0, 0)
        assert stats.total == 5
        assert len(dest) == 5
        for seed in range(1, 6):
            assert dest.contains(spec(seed))

    def test_merge_is_idempotent(self, tmp_path):
        source = ResultStore(tmp_path / "src.sqlite")
        dest = ResultStore(tmp_path / "dest.sqlite")
        fill(source, [1, 2, 3])
        first = dest.merge_from(source)
        again = dest.merge_from(source)
        assert (first.inserted, first.identical) == (3, 0)
        assert (again.inserted, again.identical) == (0, 3)
        assert len(dest) == 3

    def test_merged_rows_are_verbatim_copies(self, tmp_path):
        source = ResultStore(tmp_path / "src.sqlite")
        dest = ResultStore(tmp_path / "dest.sqlite")
        fill(source, [1, 2, 3])
        dest.merge_from(source)
        assert dest.export_rows() == source.export_rows()

    def test_merge_from_path_opens_read_only(self, tmp_path):
        source_path = tmp_path / "src.sqlite"
        with ResultStore(source_path) as source:
            fill(source, [1])
        dest = ResultStore(tmp_path / "dest.sqlite")
        assert dest.merge_from(source_path).inserted == 1

    def test_missing_source_path_raises(self, tmp_path):
        dest = ResultStore(tmp_path / "dest.sqlite")
        with pytest.raises(MergeError, match="no result store"):
            dest.merge_from(tmp_path / "nope.sqlite")

    def test_read_only_destination_rejected(self, tmp_path):
        path = tmp_path / "dest.sqlite"
        with ResultStore(path) as writer:
            fill(writer, [1])
        reader = ResultStore(path, read_only=True)
        other = ResultStore(tmp_path / "src.sqlite")
        with pytest.raises(ValueError, match="read-only"):
            reader.merge_from(other)


class TestMergeConflicts:
    def make_divergent(self, tmp_path):
        source = ResultStore(tmp_path / "src.sqlite")
        dest = ResultStore(tmp_path / "dest.sqlite")
        fill(dest, [1], queuing=42.0)
        fill(source, [1], queuing=99.0)  # same cell, different payload
        fill(source, [2])
        return source, dest

    def test_divergent_payload_raises_by_default(self, tmp_path):
        source, dest = self.make_divergent(tmp_path)
        with pytest.raises(MergeError, match="divergent payload"):
            dest.merge_from(source)
        # Strict merge stops before touching the destination.
        assert len(dest) == 1
        assert not dest.contains(spec(2))

    def test_prefer_ours_keeps_destination_row(self, tmp_path):
        source, dest = self.make_divergent(tmp_path)
        stats = dest.merge_from(source, prefer="ours")
        assert (stats.inserted, stats.conflicts) == (1, 1)
        assert dest.get(spec(1)).summary.average_queuing_time == 42.0

    def test_prefer_theirs_takes_source_row(self, tmp_path):
        source, dest = self.make_divergent(tmp_path)
        stats = dest.merge_from(source, prefer="theirs")
        assert (stats.inserted, stats.conflicts) == (1, 1)
        assert dest.get(spec(1)).summary.average_queuing_time == 99.0

    def test_invalid_prefer_rejected(self, tmp_path):
        dest = ResultStore(tmp_path / "dest.sqlite")
        with pytest.raises(ValueError, match="prefer"):
            dest.merge_from(
                ResultStore(tmp_path / "src.sqlite"), prefer="newest"
            )


class TestMergeSchemaVersions:
    @pytest.mark.parametrize("stale_version", [0, 99])
    def test_foreign_spec_version_rejected(self, tmp_path, stale_version):
        source_path = tmp_path / "src.sqlite"
        with ResultStore(source_path) as source:
            fill(source, [1])
            source._conn.execute(
                "UPDATE results SET spec_version = ?", (stale_version,)
            )
            source._conn.commit()
        dest = ResultStore(tmp_path / "dest.sqlite")
        with pytest.raises(MergeError, match="spec schema version"):
            dest.merge_from(source_path)
        assert len(dest) == 0
