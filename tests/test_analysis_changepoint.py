"""CUSUM changepoint detection: statistics, calibration, localization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.changepoint import (
    MIN_POINTS,
    Changepoint,
    CusumScan,
    cusum_scan,
    detect_changepoint,
    detect_changepoints,
    estimate_sigma,
    onset_interval,
    permutation_threshold,
)
from repro.util.series import TimeSeries


def noisy_series(n, rng, shift_at=None, magnitude=6.0):
    """White noise around 0, optionally shifted up from ``shift_at``."""
    values = rng.normal(0.0, 1.0, size=n)
    if shift_at is not None:
        values[shift_at:] += magnitude
    return values


class TestEstimateSigma:
    def test_constant_series_is_zero(self):
        assert estimate_sigma(np.zeros(50)) == 0.0
        assert estimate_sigma(np.full(50, 7.5)) == 0.0

    def test_too_short_is_zero(self):
        assert estimate_sigma(np.array([3.0])) == 0.0
        assert estimate_sigma(np.array([])) == 0.0

    def test_alternating_series_has_known_scale(self):
        # diff of [0, 2, 0, 2, ...] is +-2 everywhere: sqrt(4/2).
        values = np.array([0.0, 2.0] * 30)
        assert estimate_sigma(values) == pytest.approx(np.sqrt(2.0))

    def test_not_inflated_by_a_level_shift(self):
        flat = np.concatenate([np.zeros(50), np.zeros(50)])
        shifted = np.concatenate([np.zeros(50), np.full(50, 100.0)])
        # One jump among 99 diffs barely moves the estimate; the naive
        # std of the shifted series would be ~50.
        assert estimate_sigma(shifted) < estimate_sigma(flat) + 8.0
        assert np.std(shifted) > 40.0


class TestCusumScan:
    def test_locates_a_clean_shift(self):
        rng = np.random.default_rng(3)
        scan = cusum_scan(noisy_series(200, rng, shift_at=100))
        assert not scan.degenerate
        assert 90 <= scan.index <= 110
        assert scan.statistic > 1.0

    def test_constant_series_is_degenerate(self):
        scan = cusum_scan(np.full(100, 4.0))
        assert scan == CusumScan(statistic=0.0, index=0, sigma=0.0)
        assert scan.degenerate

    def test_short_series_is_degenerate(self):
        assert cusum_scan(np.array([1.0])).degenerate
        assert cusum_scan(np.array([])).degenerate

    def test_accepts_time_series_objects(self):
        series = TimeSeries("queue")
        rng = np.random.default_rng(5)
        for i, v in enumerate(noisy_series(80, rng, shift_at=40)):
            series.append(float(i) * 5.0, float(v))
        scan = cusum_scan(series)
        assert 30 <= scan.index <= 50


class TestPermutationThreshold:
    def test_deterministic_for_a_seed(self):
        rng = np.random.default_rng(11)
        values = noisy_series(120, rng)
        a = permutation_threshold(values, seed=42)
        b = permutation_threshold(values, seed=42)
        assert a == b

    def test_seed_changes_the_draws(self):
        rng = np.random.default_rng(11)
        values = noisy_series(120, rng)
        assert permutation_threshold(values, seed=0) != permutation_threshold(
            values, seed=1
        )

    def test_short_series_is_never_significant(self):
        assert permutation_threshold(np.array([1.0])) == float("inf")

    def test_validates_arguments(self):
        values = np.arange(30, dtype=float)
        with pytest.raises(ValueError, match="n_permutations"):
            permutation_threshold(values, n_permutations=0)
        with pytest.raises(ValueError, match="quantile"):
            permutation_threshold(values, quantile=1.5)


class TestDetectChangepoint:
    def test_finds_an_injected_shift(self):
        rng = np.random.default_rng(7)
        cp = detect_changepoint(noisy_series(200, rng, shift_at=120))
        assert cp is not None
        assert 110 <= cp.index <= 130
        assert cp.shift == pytest.approx(6.0, abs=1.0)
        assert cp.statistic >= cp.threshold

    def test_time_series_onset_is_in_time_units(self):
        series = TimeSeries("queue")
        rng = np.random.default_rng(9)
        for i, v in enumerate(noisy_series(200, rng, shift_at=120)):
            series.append(float(i) * 5.0, float(v))
        cp = detect_changepoint(series)
        assert cp is not None
        assert cp.time == pytest.approx(cp.index * 5.0)
        assert 550.0 <= cp.time <= 650.0

    def test_pure_noise_is_not_flagged(self):
        rng = np.random.default_rng(13)
        assert detect_changepoint(noisy_series(200, rng)) is None

    def test_constant_and_short_series_return_none(self):
        assert detect_changepoint(np.full(100, 2.0)) is None
        assert detect_changepoint(np.arange(MIN_POINTS - 1.0)) is None
        assert detect_changepoint(np.array([])) is None

    def test_byte_deterministic(self):
        rng = np.random.default_rng(17)
        values = noisy_series(150, rng, shift_at=75)
        assert detect_changepoint(values) == detect_changepoint(values)


class TestDetectChangepoints:
    def test_covers_both_shifts_sorted(self):
        rng = np.random.default_rng(21)
        values = noisy_series(300, rng)
        values[100:] += 8.0
        values[200:] += 8.0
        found = detect_changepoints(values, min_segment=30)
        # Binary segmentation may add a mid-staircase split, but both
        # true shifts must be localized and the output index-sorted.
        assert len(found) >= 2
        indices = [cp.index for cp in found]
        assert indices == sorted(indices)
        assert any(85 <= i <= 115 for i in indices)
        assert any(185 <= i <= 215 for i in indices)
        assert all(isinstance(cp, Changepoint) for cp in found)

    def test_single_shift_yields_one(self):
        rng = np.random.default_rng(23)
        values = noisy_series(200, rng, shift_at=100, magnitude=8.0)
        found = detect_changepoints(values, min_segment=30)
        assert len(found) == 1

    def test_noise_yields_none(self):
        rng = np.random.default_rng(29)
        assert detect_changepoints(noisy_series(200, rng)) == []

    def test_validates_arguments(self):
        with pytest.raises(ValueError, match="penalty"):
            detect_changepoints(np.zeros(100), penalty=0.0)
        with pytest.raises(ValueError, match="min_segment"):
            detect_changepoints(np.zeros(100), min_segment=1)

    def test_deterministic_regardless_of_repeats(self):
        rng = np.random.default_rng(31)
        values = noisy_series(300, rng)
        values[150:] += 8.0
        assert detect_changepoints(values) == detect_changepoints(values)


class TestOnsetInterval:
    def test_empty_is_none(self):
        assert onset_interval([]) is None

    def test_single_onset_collapses(self):
        assert onset_interval([512.0]) == (512.0, 512.0)

    def test_small_n_gives_full_range(self):
        # n=2: no order statistic can be discarded at 95%.
        assert onset_interval([460.0, 565.0]) == (460.0, 565.0)

    def test_interval_brackets_the_median(self):
        onsets = [float(t) for t in range(100, 1100, 100)]
        lo, hi = onset_interval(onsets)
        median = (onsets[4] + onsets[5]) / 2.0
        assert lo <= median <= hi
        assert lo >= onsets[0] and hi <= onsets[-1]

    def test_large_n_tightens(self):
        wide = onset_interval([float(t) for t in range(10)])
        tight = onset_interval([float(t % 10) for t in range(50)])
        assert tight[1] - tight[0] < wide[1] - wide[0]

    def test_validates_confidence(self):
        with pytest.raises(ValueError, match="confidence"):
            onset_interval([1.0], confidence=1.0)
