"""The analysis surfaces: CLI, sweep-grid recording, experiment registry."""

from __future__ import annotations

import csv
import json
import re

import pytest

from repro.cli import main
from repro.orchestration.spec import SweepGrid


@pytest.fixture(scope="module")
def traced_store(tmp_path_factory):
    """A small store with entry-queue traces, filled once per module."""
    store = str(tmp_path_factory.mktemp("analysis") / "results.sqlite")
    code = main(
        [
            "sweep",
            "--scenario",
            "steady-3x3",
            "--engine",
            "meso-counts",
            "--seeds",
            "1",
            "--duration",
            "300",
            "--record-entry-queues",
            "2",
            "--store",
            store,
        ]
    )
    assert code == 0
    return store


class TestVersionFlag:
    def test_version_prints_package_and_api(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out.strip()
        assert re.fullmatch(r"repro \S+ \(api \d+\.\d+\)", out), out

    def test_version_matches_api_facade(self, capsys):
        from repro.api import API_VERSION, package_version

        with pytest.raises(SystemExit):
            main(["--version"])
        out = capsys.readouterr().out.strip()
        assert out == f"repro {package_version()} (api {API_VERSION})"


class TestAnalyzeCommand:
    def test_missing_store_exits_2(self, tmp_path, capsys):
        code = main(
            ["analyze", "changepoints", "--store", str(tmp_path / "no.sqlite")]
        )
        assert code == 2
        assert "no store" in capsys.readouterr().err

    def test_invalid_options_exit_2(self, traced_store, capsys):
        code = main(
            [
                "analyze",
                "changepoints",
                "--store",
                traced_store,
                "--warmup-fraction",
                "1.5",
            ]
        )
        assert code == 2
        assert "warmup_fraction" in capsys.readouterr().err

    def test_table_renders_the_cell(self, traced_store, capsys):
        assert main(["analyze", "changepoints", "--store", traced_store]) == 0
        out = capsys.readouterr().out
        assert "Regime-shift analysis — 1 cells" in out
        assert "steady-3x3" in out
        assert "flag/ana/run" in out

    def test_filters_narrow_the_query(self, traced_store, capsys):
        code = main(
            [
                "analyze",
                "changepoints",
                "--store",
                traced_store,
                "--controller",
                "fixed-time",
            ]
        )
        assert code == 0
        assert "0 cells" in capsys.readouterr().out

    def test_json_and_csv_exports_agree(self, traced_store, tmp_path, capsys):
        assert (
            main(
                [
                    "analyze",
                    "changepoints",
                    "--store",
                    traced_store,
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        rows = json.loads(capsys.readouterr().out)
        csv_path = tmp_path / "verdicts.csv"
        assert (
            main(
                [
                    "analyze",
                    "changepoints",
                    "--store",
                    traced_store,
                    "--format",
                    "csv",
                    "--output",
                    str(csv_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        with open(csv_path, newline="") as handle:
            csv_rows = list(csv.DictReader(handle))
        assert len(csv_rows) == len(rows) == 1
        assert csv_rows[0]["pattern"] == rows[0]["pattern"] == "steady-3x3"
        assert csv_rows[0]["status"] == rows[0]["status"]
        assert set(csv_rows[0]) == set(rows[0])

    def test_analysis_is_byte_deterministic(self, traced_store, capsys):
        outputs = []
        for _ in range(2):
            assert (
                main(
                    [
                        "analyze",
                        "changepoints",
                        "--store",
                        traced_store,
                        "--format",
                        "json",
                    ]
                )
                == 0
            )
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]


class TestGridRecording:
    def test_round_trips_through_the_wire_format(self):
        grid = SweepGrid(
            scenarios=("steady-3x3",),
            seeds=(1, 2),
            engines=("meso-counts",),
            record_entry_queues=-1,
        )
        clone = SweepGrid.from_dict(grid.to_dict())
        assert clone == grid
        assert clone.record_entry_queues == -1

    def test_default_is_off(self):
        grid = SweepGrid(scenarios=("steady-3x3",), engines=("meso-counts",))
        assert grid.to_dict()["record_entry_queues"] == 0
        assert all(spec.record_queues == () for spec in grid.specs())

    def test_validation_rejects_below_minus_one(self):
        with pytest.raises(ValueError, match="record_entry_queues"):
            SweepGrid(scenarios=("steady-3x3",), record_entry_queues=-2)

    def test_all_entries_recorded_on_every_spec(self):
        grid = SweepGrid(
            scenarios=("steady-3x3",),
            seeds=(1, 2),
            engines=("meso-counts",),
            record_entry_queues=-1,
        )
        specs = grid.specs()
        assert len(specs) == 2
        # A 3x3 grid has 12 entry roads; every pair is (node, road) and
        # identical across seeds (topology is seed-independent).
        assert all(len(spec.record_queues) == 12 for spec in specs)
        assert specs[0].record_queues == specs[1].record_queues
        assert all(
            isinstance(node, str) and isinstance(road, str)
            for node, road in specs[0].record_queues
        )

    def test_positive_n_limits_in_sorted_order(self):
        grid = SweepGrid(
            scenarios=("steady-3x3",),
            engines=("meso-counts",),
            record_entry_queues=2,
        )
        [spec] = grid.specs()
        full = SweepGrid(
            scenarios=("steady-3x3",),
            engines=("meso-counts",),
            record_entry_queues=-1,
        ).specs()[0]
        assert spec.record_queues == full.record_queues[:2]


class TestRegimesExperiment:
    def test_registered_with_the_builtins(self):
        from repro.results import load_builtin_experiments

        assert "stability-regimes" in load_builtin_experiments()

    def test_spec_grid_shape_and_recording(self):
        from repro.analysis.stability import STABILITY_REGIMES

        specs = STABILITY_REGIMES.build_specs(**STABILITY_REGIMES.defaults)
        # 3 loads x 2 controllers x 3 seeds.
        assert len(specs) == 18
        assert {dict(s.scenario_params)["load"] for s in specs} == {
            0.8,
            1.2,
            1.6,
        }
        assert all(len(spec.record_queues) == 12 for spec in specs)
        assert {spec.controller for spec in specs} == {"util-bp", "cap-bp"}
