"""Tests for repro.metrics — collector, traces, utilization."""

import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.traces import PhaseTrace, QueueTrace
from repro.metrics.utilization import UtilizationTracker


class TestMetricsCollector:
    def test_average_queuing_time(self):
        c = MetricsCollector()
        c.vehicle_entered(1, 0.0)
        c.vehicle_entered(2, 0.0)
        c.add_queuing_time(1, 10.0)
        c.add_queuing_time(2, 20.0)
        c.advance(100.0)
        assert c.summary().average_queuing_time == 15.0

    def test_vehicles_still_inside_counted(self):
        c = MetricsCollector()
        c.vehicle_entered(1, 0.0)
        c.add_queuing_time(1, 50.0)  # never leaves
        c.advance(100.0)
        summary = c.summary()
        assert summary.vehicles_entered == 1
        assert summary.vehicles_left == 0
        assert summary.average_queuing_time == 50.0

    def test_travel_time_only_completed(self):
        c = MetricsCollector()
        c.vehicle_entered(1, 0.0)
        c.vehicle_entered(2, 0.0)
        c.vehicle_left(1, 30.0)
        c.advance(100.0)
        assert c.summary().average_travel_time == 30.0

    def test_throughput(self):
        c = MetricsCollector()
        for i in range(10):
            c.vehicle_entered(i, 0.0)
            c.vehicle_left(i, 5.0)
        c.advance(3600.0)
        assert c.summary().throughput_per_hour == 10.0

    def test_double_entry_rejected(self):
        c = MetricsCollector()
        c.vehicle_entered(1, 0.0)
        with pytest.raises(ValueError):
            c.vehicle_entered(1, 1.0)

    def test_double_leave_rejected(self):
        c = MetricsCollector()
        c.vehicle_entered(1, 0.0)
        c.vehicle_left(1, 1.0)
        with pytest.raises(ValueError):
            c.vehicle_left(1, 2.0)

    def test_leave_before_enter_rejected(self):
        c = MetricsCollector()
        c.vehicle_entered(1, 10.0)
        with pytest.raises(ValueError):
            c.vehicle_left(1, 5.0)

    def test_unknown_vehicle_rejected(self):
        c = MetricsCollector()
        with pytest.raises(KeyError):
            c.add_queuing_time(42, 1.0)

    def test_clock_monotonic(self):
        c = MetricsCollector()
        c.advance(5.0)
        with pytest.raises(ValueError):
            c.advance(4.0)

    def test_negative_increment_rejected(self):
        c = MetricsCollector()
        c.vehicle_entered(1, 0.0)
        with pytest.raises(ValueError):
            c.add_queuing_time(1, -1.0)

    def test_max_queuing_time(self):
        c = MetricsCollector()
        c.vehicle_entered(1, 0.0)
        c.vehicle_entered(2, 0.0)
        c.add_queuing_time(1, 3.0)
        c.add_queuing_time(2, 9.0)
        c.advance(10.0)
        assert c.summary().max_queuing_time == 9.0


class TestPhaseTrace:
    def test_coalesces_repeats(self):
        trace = PhaseTrace("J")
        for t in range(5):
            trace.record(float(t), 1)
        assert len(trace.phases) == 1

    def test_intervals(self):
        trace = PhaseTrace("J")
        trace.record(0.0, 1)
        trace.record(10.0, 0)
        trace.record(14.0, 3)
        assert trace.intervals(20.0) == [
            (0.0, 10.0, 1),
            (10.0, 14.0, 0),
            (14.0, 20.0, 3),
        ]

    def test_phase_durations(self):
        trace = PhaseTrace("J")
        trace.record(0.0, 1)
        trace.record(10.0, 0)
        trace.record(14.0, 1)
        durations = trace.phase_durations(20.0)
        assert durations[1] == 16.0
        assert durations[0] == 4.0

    def test_mean_control_phase_length_excludes_amber(self):
        trace = PhaseTrace("J")
        trace.record(0.0, 1)
        trace.record(10.0, 0)
        trace.record(14.0, 3)
        assert trace.mean_control_phase_length(20.0) == pytest.approx(8.0)

    def test_switch_count(self):
        trace = PhaseTrace("J")
        for t, p in [(0, 1), (5, 0), (9, 3)]:
            trace.record(float(t), p)
        assert trace.switch_count() == 2

    def test_backwards_time_rejected(self):
        trace = PhaseTrace("J")
        trace.record(5.0, 1)
        with pytest.raises(ValueError):
            trace.record(4.0, 2)

    def test_as_series_staircase(self):
        trace = PhaseTrace("J")
        trace.record(0.0, 1)
        trace.record(10.0, 2)
        series = trace.as_series(20.0)
        assert series.values[0] == 1.0
        assert series.values[-1] == 2.0


class TestQueueTrace:
    def test_sampling_and_stats(self):
        trace = QueueTrace("road")
        for t, q in [(0, 2), (5, 4), (10, 6)]:
            trace.sample(float(t), q)
        assert trace.mean() == 4.0
        assert trace.max() == 6.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            QueueTrace("road").sample(0.0, -1)

    def test_movement_label(self):
        trace = QueueTrace("road", movement=("a", "b"))
        assert trace.series.name == "a->b"


class TestUtilizationTracker:
    def test_amber_share(self):
        tracker = UtilizationTracker("J")
        tracker.record_slot(1, 1.0, 4.0, 2, True)
        tracker.record_slot(0, 1.0, 0.0, 0, False)
        assert tracker.amber_share == 0.5

    def test_service_utilization(self):
        tracker = UtilizationTracker("J")
        tracker.record_slot(1, 1.0, 4.0, 2, True)
        assert tracker.service_utilization == 0.5

    def test_wasted_green(self):
        tracker = UtilizationTracker("J")
        tracker.record_slot(1, 1.0, 4.0, 0, False)  # wasted
        tracker.record_slot(1, 1.0, 4.0, 0, True)   # servable, not wasted
        assert tracker.wasted_green_share == 0.5

    def test_merged(self):
        a = UtilizationTracker("A")
        b = UtilizationTracker("B")
        a.record_slot(1, 1.0, 2.0, 1, True)
        b.record_slot(0, 1.0, 0.0, 0, False)
        merged = a.merged(b)
        assert merged.green_time == 1.0
        assert merged.amber_time == 1.0

    def test_bad_inputs_rejected(self):
        tracker = UtilizationTracker("J")
        with pytest.raises(ValueError):
            tracker.record_slot(1, 0.0, 1.0, 0, False)
        with pytest.raises(ValueError):
            tracker.record_slot(1, 1.0, 1.0, -1, False)

    def test_empty_tracker_safe(self):
        tracker = UtilizationTracker("J")
        assert tracker.service_utilization == 0.0
        assert tracker.amber_share == 0.0
        assert tracker.wasted_green_share == 0.0
