"""Event-engine specifics: calendar determinism and the step contract.

Trajectory parity with ``meso-counts`` lives in ``test_engine_parity``
and the generic engine contract in ``test_core_engine``; this module
pins what is unique to ``meso-events``: the calendar queue's explicit
``(time, priority, seq)`` tie-break, the constant-mini-slot contract,
the non-dyadic per-slot fallback, and finalize settling the lazily
deferred books.
"""

import pytest

from repro.core.engine import build_engine
from repro.meso.events import (
    PRIO_ARRIVAL,
    PRIO_PROMOTE,
    PRIO_REFILL,
    EventCalendar,
    EventCountsSimulator,
)
from repro.scenarios import build_named_scenario


def _fixed_plan(nodes, step):
    slot, offset = divmod(step, 13)
    phase = 0 if offset == 12 else 1 + slot % 4
    return {node: phase for node in nodes}


class TestEventCalendar:
    def test_orders_by_time_first(self):
        calendar = EventCalendar()
        calendar.push(3.0, PRIO_ARRIVAL, "late")
        calendar.push(1.0, PRIO_ARRIVAL, "early")
        calendar.push(2.0, PRIO_ARRIVAL, "middle")
        assert calendar.peek_time() == 1.0
        order = [calendar.pop()[3] for _ in range(3)]
        assert order == ["early", "middle", "late"]

    def test_same_time_orders_by_priority(self):
        """Promotions run before refills before arrivals at one instant.

        That is the dynamics order of a mini-slot: transit heads become
        serviceable, then the arrival stream tops up, then new vehicles
        join — matching meso-counts' promote / serve / inject phases.
        """
        calendar = EventCalendar()
        calendar.push(5.0, PRIO_ARRIVAL, "arrival")
        calendar.push(5.0, PRIO_PROMOTE, "promote")
        calendar.push(5.0, PRIO_REFILL, "refill")
        order = [calendar.pop()[3] for _ in range(3)]
        assert order == ["promote", "refill", "arrival"]

    def test_full_tie_breaks_by_insertion_order(self):
        """(time, priority) ties pop FIFO — seq is monotone, so the
        heap never compares payloads (which need not be orderable)."""
        calendar = EventCalendar()
        for index in range(8):
            calendar.push(1.0, PRIO_PROMOTE, {"index": index})
        order = [calendar.pop()[3]["index"] for _ in range(8)]
        assert order == list(range(8))

    def test_interleaved_pushes_stay_deterministic(self):
        calendar = EventCalendar()
        calendar.push(2.0, PRIO_ARRIVAL, "a")
        calendar.push(1.0, PRIO_REFILL, "b")
        assert calendar.pop()[3] == "b"
        calendar.push(1.5, PRIO_PROMOTE, "c")
        calendar.push(1.5, PRIO_PROMOTE, "d")
        assert [calendar.pop()[3] for _ in range(3)] == ["c", "d", "a"]
        assert len(calendar) == 0


class TestStepContract:
    def test_constant_mini_slot_required(self):
        sim = build_engine(
            build_named_scenario("steady-3x3", seed=1), "meso-events"
        )
        sim.step(1.0, {})
        with pytest.raises(ValueError, match="constant mini-slot"):
            sim.step(0.5, {})

    def test_non_dyadic_dt_falls_back_to_per_slot(self):
        """A non-dyadic mini-slot cannot use the closed-form event
        bookkeeping (accumulated times drift in the last ulp); the
        engine must transparently run meso-counts' per-slot step and
        still match it exactly."""
        scenario = build_named_scenario("steady-3x3", seed=7)
        counts = build_engine(scenario, "meso-counts")
        events = build_engine(scenario, "meso-events")
        assert isinstance(events, EventCountsSimulator)
        nodes = list(scenario.network.intersections)
        for step in range(150):
            plan = _fixed_plan(nodes, step)
            counts.step(0.7, plan)
            events.step(0.7, dict(plan))
            assert counts._queue_counts == events._queue_counts, step
            assert counts._credit == events._credit, step
        counts.finalize()
        events.finalize()
        assert (
            counts.collector.summary(105.0)
            == events.collector.summary(105.0)
        )

    def test_finalize_settles_lazy_books(self):
        """Mid-run the event engine defers idle-green bookkeeping and
        credit refills; finalize must settle them to meso-counts'
        exact state (credits included)."""
        scenario = build_named_scenario("tidal-3x3", seed=5)
        counts = build_engine(scenario, "meso-counts")
        events = build_engine(scenario, "meso-events")
        nodes = list(scenario.network.intersections)
        for step in range(200):
            plan = _fixed_plan(nodes, step)
            counts.step(1.0, plan)
            events.step(1.0, dict(plan))
        counts.finalize()
        events.finalize()
        assert counts._credit == events._credit
        assert {
            n: t.to_dict() for n, t in counts.utilization.items()
        } == {n: t.to_dict() for n, t in events.utilization.items()}
