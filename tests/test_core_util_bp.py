"""Tests for repro.core.util_bp — Algorithm 1, case by case."""

import pytest

from repro.control.base import TRANSITION
from repro.core.config import UtilBpConfig
from repro.core.util_bp import UtilBpController
from tests.conftest import make_observation


@pytest.fixture
def controller(intersection):
    return UtilBpController(intersection, UtilBpConfig())


def phase_movements(intersection, index):
    return intersection.phase_by_index(index).movements


class TestInitialDecision:
    def test_first_decision_applies_directly(self, intersection, controller):
        """From the initial (expired-transition) state, c' applies at once."""
        m = phase_movements(intersection, 3)[0]
        obs = make_observation(intersection, movement_queues={m.key: 5})
        assert controller.decide(obs) == 3

    def test_all_empty_picks_lowest_index(self, intersection, controller):
        obs = make_observation(intersection)
        assert controller.decide(obs) == 1


class TestCase1TransitionRunning:
    def test_transition_held_until_expiry(self, intersection, controller):
        m1 = phase_movements(intersection, 1)[0]
        m3 = phase_movements(intersection, 3)[0]
        # Start phase 1, then create overwhelming demand for phase 3.
        controller.decide(
            make_observation(intersection, movement_queues={m1.key: 5})
        )
        obs = make_observation(
            intersection, time=1.0, movement_queues={m3.key: 50}
        )
        assert controller.decide(obs) == TRANSITION  # switch -> amber
        for t in (2.0, 3.0, 4.0):
            obs = make_observation(
                intersection, time=t, movement_queues={m3.key: 50}
            )
            decision = controller.decide(obs)
            if t < 5.0:
                assert decision == TRANSITION

    def test_transition_expires_into_selected_phase(
        self, intersection, controller
    ):
        m1 = phase_movements(intersection, 1)[0]
        m3 = phase_movements(intersection, 3)[0]
        controller.decide(
            make_observation(intersection, movement_queues={m1.key: 5})
        )
        controller.decide(
            make_observation(
                intersection, time=1.0, movement_queues={m3.key: 50}
            )
        )
        # Amber lasts 4 s (t=1..5); at t=5 the new phase starts.
        obs = make_observation(
            intersection, time=5.0, movement_queues={m3.key: 50}
        )
        assert controller.decide(obs) == 3

    def test_transition_remaining(self, intersection, controller):
        m1 = phase_movements(intersection, 1)[0]
        m3 = phase_movements(intersection, 3)[0]
        controller.decide(
            make_observation(intersection, movement_queues={m1.key: 5})
        )
        controller.decide(
            make_observation(
                intersection, time=1.0, movement_queues={m3.key: 50}
            )
        )
        assert controller.transition_remaining(2.0) == pytest.approx(3.0)


class TestCase2KeepPhase:
    def test_kept_while_pressure_difference_positive(
        self, intersection, controller
    ):
        m1 = phase_movements(intersection, 1)[0]
        m3 = phase_movements(intersection, 3)[0]
        controller.decide(
            make_observation(intersection, movement_queues={m1.key: 10})
        )
        # Phase 3 has more total demand, but phase 1's best link still
        # has a positive pressure difference -> keep (limits ambers).
        obs = make_observation(
            intersection,
            time=1.0,
            movement_queues={m1.key: 2, m3.key: 80},
        )
        assert controller.decide(obs) == 1

    def test_released_when_difference_hits_zero(self, intersection, controller):
        m1 = phase_movements(intersection, 1)[0]
        m3 = phase_movements(intersection, 3)[0]
        controller.decide(
            make_observation(intersection, movement_queues={m1.key: 10})
        )
        # Pressure difference now zero (q_move == q_out): keep fails,
        # and phase 3's demand wins the selection -> amber.
        obs = make_observation(
            intersection,
            time=1.0,
            movement_queues={m1.key: 2, m3.key: 80},
            out_queues={m1.out_road: 2},
        )
        assert controller.decide(obs) == TRANSITION

    def test_keep_margin_extends_phase(self, intersection):
        controller = UtilBpController(
            intersection, UtilBpConfig(keep_margin=5.0)
        )
        m1 = phase_movements(intersection, 1)[0]
        m3 = phase_movements(intersection, 3)[0]
        controller.decide(
            make_observation(intersection, movement_queues={m1.key: 10})
        )
        # Difference is -3: within the margin of 5 -> still kept.
        obs = make_observation(
            intersection,
            time=1.0,
            movement_queues={m1.key: 2, m3.key: 80},
            out_queues={m1.out_road: 5},
        )
        assert controller.decide(obs) == 1

    def test_not_kept_when_empty(self, intersection, controller):
        m1 = phase_movements(intersection, 1)[0]
        m3 = phase_movements(intersection, 3)[0]
        controller.decide(
            make_observation(intersection, movement_queues={m1.key: 1})
        )
        obs = make_observation(
            intersection, time=1.0, movement_queues={m3.key: 4}
        )
        assert controller.decide(obs) == TRANSITION


class TestCase3Selection:
    def test_highest_total_gain_among_servable(self, intersection, controller):
        # Phase 1 has one big queue; phase 3 has two smaller queues whose
        # total (incl. the W* shift per non-empty link) is larger.
        m1 = phase_movements(intersection, 1)[0]
        m3a, m3b = phase_movements(intersection, 3)[:2]
        obs = make_observation(
            intersection,
            movement_queues={m1.key: 30, m3a.key: 10, m3b.key: 10},
        )
        # totals: c1 = 150 + 3*alpha, c3 = 130 + 130 + 2*alpha.
        assert controller.decide(obs) == 3

    def test_full_roads_fall_back_to_gmax(self, intersection, controller):
        # Every outgoing road full: all gains beta except empty lanes
        # (alpha).  Selection falls back to argmax g_max (line 10).
        movements = list(intersection.movements.values())
        obs = make_observation(
            intersection,
            movement_queues={m.key: 10 for m in movements},
            out_queues={road: 120 for road in intersection.out_roads},
        )
        decision = controller.decide(obs)
        assert decision in (1, 2, 3, 4)

    def test_empty_lane_with_space_prefers_servable(self, intersection, controller):
        # Phase 1 empty (alpha); phase 3 has one vehicle -> servable wins.
        m3 = phase_movements(intersection, 3)[0]
        obs = make_observation(intersection, movement_queues={m3.key: 1})
        assert controller.decide(obs) == 3

    def test_reselecting_same_phase_needs_no_amber(
        self, intersection, controller
    ):
        m1 = phase_movements(intersection, 1)[0]
        controller.decide(
            make_observation(intersection, movement_queues={m1.key: 3})
        )
        # Keep condition fails (difference 0), but phase 1 still wins
        # the selection -> stays green without a transition.
        obs = make_observation(
            intersection,
            time=1.0,
            movement_queues={m1.key: 3},
            out_queues={m1.out_road: 3},
        )
        assert controller.decide(obs) == 1


class TestReset:
    def test_reset_clears_state(self, intersection, controller):
        m1 = phase_movements(intersection, 1)[0]
        controller.decide(
            make_observation(intersection, movement_queues={m1.key: 5})
        )
        controller.reset()
        assert controller.current_phase == TRANSITION
        assert controller.transition_remaining(0.0) == 0.0


class TestWorkConservation:
    def test_serves_whenever_something_is_servable(self, intersection, controller):
        """Sec. IV-Q2: a phase with servable vehicles is always selected
        over phases that cannot serve (mini-slot work conservation)."""

        movements = list(intersection.movements.values())
        for servable in movements:
            controller.reset()
            obs = make_observation(
                intersection, movement_queues={servable.key: 1}
            )
            decision = controller.decide(obs)
            assert decision != TRANSITION
            phase = intersection.phase_by_index(decision)
            assert phase.serves(servable.in_road, servable.out_road)
