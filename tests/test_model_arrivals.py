"""Tests for repro.model.arrivals — Poisson processes and schedules."""

import numpy as np
import pytest

from repro.model.arrivals import ArrivalSchedule, PoissonArrivals


class TestArrivalSchedule:
    def test_constant(self):
        schedule = ArrivalSchedule.constant(0.5)
        assert schedule.rate_at(0.0) == 0.5
        assert schedule.rate_at(1e6) == 0.5

    def test_from_interarrival_table2(self):
        # Pattern I north: a vehicle every 3 s -> rate 1/3.
        schedule = ArrivalSchedule.from_interarrival(3.0)
        assert schedule.rate_at(0.0) == pytest.approx(1 / 3)

    def test_piecewise_rates(self):
        schedule = ArrivalSchedule.piecewise([(0, 1.0), (10, 2.0), (20, 0.5)])
        assert schedule.rate_at(5) == 1.0
        assert schedule.rate_at(10) == 2.0
        assert schedule.rate_at(25) == 0.5

    def test_expected_count_within_segment(self):
        schedule = ArrivalSchedule.constant(2.0)
        assert schedule.expected_count(0, 5) == pytest.approx(10.0)

    def test_expected_count_across_boundary(self):
        schedule = ArrivalSchedule.piecewise([(0, 1.0), (10, 3.0)])
        assert schedule.expected_count(8, 12) == pytest.approx(2 * 1 + 2 * 3)

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            ArrivalSchedule.piecewise([(5, 1.0)])

    def test_strictly_increasing_starts(self):
        with pytest.raises(ValueError):
            ArrivalSchedule.piecewise([(0, 1.0), (0, 2.0)])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSchedule.constant(-0.1)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSchedule.constant(1.0).rate_at(-1)

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSchedule.constant(1.0).expected_count(5, 4)


class TestPoissonArrivals:
    def test_mean_count_matches_rate(self):
        process = PoissonArrivals(
            ArrivalSchedule.constant(1 / 3), np.random.default_rng(0)
        )
        total = sum(process.sample_count(float(t), 1.0) for t in range(3000))
        assert total == pytest.approx(1000, rel=0.1)

    def test_zero_rate_no_arrivals(self):
        process = PoissonArrivals(
            ArrivalSchedule.constant(0.0), np.random.default_rng(0)
        )
        assert all(
            process.sample_count(float(t), 1.0) == 0 for t in range(100)
        )

    def test_sample_times_sorted_and_in_window(self):
        process = PoissonArrivals(
            ArrivalSchedule.constant(2.0), np.random.default_rng(1)
        )
        times = process.sample_times(10.0, 5.0)
        assert times == sorted(times)
        assert all(10.0 <= t < 15.0 for t in times)

    def test_sample_times_respect_segments(self):
        # Rate 0 before t=50, high after: all samples must land after 50.
        schedule = ArrivalSchedule.piecewise([(0, 0.0), (50, 5.0)])
        process = PoissonArrivals(schedule, np.random.default_rng(2))
        times = process.sample_times(0.0, 100.0)
        assert times and all(t >= 50.0 for t in times)

    def test_deterministic_given_rng(self):
        a = PoissonArrivals(ArrivalSchedule.constant(1.0), np.random.default_rng(7))
        b = PoissonArrivals(ArrivalSchedule.constant(1.0), np.random.default_rng(7))
        counts_a = [a.sample_count(float(t), 1.0) for t in range(50)]
        counts_b = [b.sample_count(float(t), 1.0) for t in range(50)]
        assert counts_a == counts_b

    def test_bad_dt_rejected(self):
        process = PoissonArrivals(
            ArrivalSchedule.constant(1.0), np.random.default_rng(0)
        )
        with pytest.raises(ValueError):
            process.sample_count(0.0, 0.0)
