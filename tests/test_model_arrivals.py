"""Tests for repro.model.arrivals — Poisson processes and schedules."""

import numpy as np
import pytest

from repro.model.arrivals import ArrivalSchedule, PoissonArrivals


class TestArrivalSchedule:
    def test_constant(self):
        schedule = ArrivalSchedule.constant(0.5)
        assert schedule.rate_at(0.0) == 0.5
        assert schedule.rate_at(1e6) == 0.5

    def test_from_interarrival_table2(self):
        # Pattern I north: a vehicle every 3 s -> rate 1/3.
        schedule = ArrivalSchedule.from_interarrival(3.0)
        assert schedule.rate_at(0.0) == pytest.approx(1 / 3)

    def test_piecewise_rates(self):
        schedule = ArrivalSchedule.piecewise([(0, 1.0), (10, 2.0), (20, 0.5)])
        assert schedule.rate_at(5) == 1.0
        assert schedule.rate_at(10) == 2.0
        assert schedule.rate_at(25) == 0.5

    def test_expected_count_within_segment(self):
        schedule = ArrivalSchedule.constant(2.0)
        assert schedule.expected_count(0, 5) == pytest.approx(10.0)

    def test_expected_count_across_boundary(self):
        schedule = ArrivalSchedule.piecewise([(0, 1.0), (10, 3.0)])
        assert schedule.expected_count(8, 12) == pytest.approx(2 * 1 + 2 * 3)

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            ArrivalSchedule.piecewise([(5, 1.0)])

    def test_strictly_increasing_starts(self):
        with pytest.raises(ValueError):
            ArrivalSchedule.piecewise([(0, 1.0), (0, 2.0)])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSchedule.constant(-0.1)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSchedule.constant(1.0).rate_at(-1)

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSchedule.constant(1.0).expected_count(5, 4)


class TestPoissonArrivals:
    def test_mean_count_matches_rate(self):
        process = PoissonArrivals(
            ArrivalSchedule.constant(1 / 3), np.random.default_rng(0)
        )
        total = sum(process.sample_count(float(t), 1.0) for t in range(3000))
        assert total == pytest.approx(1000, rel=0.1)

    def test_zero_rate_no_arrivals(self):
        process = PoissonArrivals(
            ArrivalSchedule.constant(0.0), np.random.default_rng(0)
        )
        assert all(
            process.sample_count(float(t), 1.0) == 0 for t in range(100)
        )

    def test_sample_times_sorted_and_in_window(self):
        process = PoissonArrivals(
            ArrivalSchedule.constant(2.0), np.random.default_rng(1)
        )
        times = process.sample_times(10.0, 5.0)
        assert times == sorted(times)
        assert all(10.0 <= t < 15.0 for t in times)

    def test_sample_times_respect_segments(self):
        # Rate 0 before t=50, high after: all samples must land after 50.
        schedule = ArrivalSchedule.piecewise([(0, 0.0), (50, 5.0)])
        process = PoissonArrivals(schedule, np.random.default_rng(2))
        times = process.sample_times(0.0, 100.0)
        assert times and all(t >= 50.0 for t in times)

    def test_deterministic_given_rng(self):
        a = PoissonArrivals(ArrivalSchedule.constant(1.0), np.random.default_rng(7))
        b = PoissonArrivals(ArrivalSchedule.constant(1.0), np.random.default_rng(7))
        counts_a = [a.sample_count(float(t), 1.0) for t in range(50)]
        counts_b = [b.sample_count(float(t), 1.0) for t in range(50)]
        assert counts_a == counts_b

    def test_bad_dt_rejected(self):
        process = PoissonArrivals(
            ArrivalSchedule.constant(1.0), np.random.default_rng(0)
        )
        with pytest.raises(ValueError):
            process.sample_count(0.0, 0.0)

    def _unbatched_reference(self, schedule, seed, starts, dt):
        """The pre-batching implementation: one scalar draw per step."""
        rng = np.random.default_rng(seed)
        counts = []
        for start in starts:
            mean = schedule.expected_count(start, start + dt)
            counts.append(0 if mean == 0.0 else int(rng.poisson(mean)))
        return counts

    @pytest.mark.parametrize("dt", [1.0, 0.5, 2.0, 0.7, 0.1, 0.3])
    def test_batched_draws_match_unbatched_sequence(self, dt):
        """Batching is a pure optimization: for any mini-slot width —
        binary-exact (batched) or not (scalar fallback) — the count
        sequence must equal the unbatched scalar implementation's,
        including across rate-segment boundaries of a piecewise
        schedule on an accumulated (float-error-carrying) time grid."""
        schedule = ArrivalSchedule.piecewise(
            [(0.0, 0.3), (40.0, 1.1), (90.0, 0.0), (130.0, 0.6)]
        )
        process = PoissonArrivals(schedule, np.random.default_rng(42))
        starts = []
        now = 0.0
        while now < 200.0:
            starts.append(now)
            now += dt  # accumulate like the simulation clock does
        counts = [process.sample_count(start, dt) for start in starts]
        assert counts == self._unbatched_reference(schedule, 42, starts, dt)

    #: Adversarial schedules for the block-draw equivalence: constant,
    #: segment boundaries, a zero-rate gap (bypasses the live batch),
    #: and a short-segment shape that exhausts batches mid-block.
    BLOCK_SCHEDULES = (
        ArrivalSchedule.constant(0.4),
        ArrivalSchedule.piecewise(
            [(0.0, 0.3), (40.0, 1.1), (90.0, 0.0), (130.0, 0.6)]
        ),
        ArrivalSchedule.piecewise(
            [(0.0, 0.9), (7.0, 0.0), (11.0, 1.3), (19.0, 0.2)]
        ),
    )

    @pytest.mark.parametrize("dt", [1.0, 0.5, 0.7])
    @pytest.mark.parametrize(
        "block_len", [1, 3, 64, 128], ids=lambda n: f"block{n}"
    )
    @pytest.mark.parametrize(
        "schedule", BLOCK_SCHEDULES, ids=("constant", "gap", "short-segs")
    )
    def test_sample_count_block_equals_per_call_loop(
        self, schedule, block_len, dt
    ):
        """``sample_count_block`` must be draw-for-draw identical to
        repeated ``sample_count`` calls — same values from the same
        generator state — for any block length, across rate-segment
        boundaries, through zero-rate segments (which leave a live
        batch behind that the bulk path must not replay), and on
        non-dyadic grids where batching never engages.  The meso-vec
        arrival-window parity rests on exactly this contract."""
        times = []
        now = 0.0
        while now < 200.0:
            times.append(now)
            now += dt  # accumulate like the simulation clock does
        reference = PoissonArrivals(schedule, np.random.default_rng(7))
        expected = [reference.sample_count(t, dt) for t in times]
        blocked = PoissonArrivals(schedule, np.random.default_rng(7))
        got = []
        for start in range(0, len(times), block_len):
            got.extend(
                blocked.sample_count_block(
                    times[start:start + block_len], dt
                )
            )
        assert got == expected

    def test_expected_count_clips_negative_start(self):
        schedule = ArrivalSchedule.piecewise([(0.0, 1.0), (10.0, 2.0)])
        assert schedule.expected_count(-5.0, 5.0) == pytest.approx(5.0)
        assert schedule.expected_count(-5.0, 20.0) == pytest.approx(30.0)
