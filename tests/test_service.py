"""The simulation service: HTTP core, job layer, end-to-end contract."""

from __future__ import annotations

import asyncio
import io
import json
import threading
import urllib.request

import pytest

from repro.api import API_VERSION
from repro.orchestration.spec import RunSpec
from repro.service.app import ServiceApp
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import HttpError, Request, Router
from repro.service.jobs import JobManager
from repro.util.logging import configure

#: A cell small enough to simulate in well under a second.
SPEC = {
    "pattern": "steady-4x4",
    "controller": "util-bp",
    "engine": "meso",
    "seed": 1,
    "duration": 40.0,
}


def spec_dict(**overrides):
    payload = dict(SPEC)
    payload.update(overrides)
    return payload


class RunningService:
    """A ServiceApp on a background event loop, bound to an ephemeral port."""

    def __init__(self, store_path):
        self.app = ServiceApp(str(store_path))
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._started.wait(10), "service did not start"
        self.client = ServiceClient(f"http://127.0.0.1:{self.app.port}")

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.app.start())
        self._started.set()
        self.loop.run_forever()

    def stop(self):
        future = asyncio.run_coroutine_threadsafe(
            self.app.server.close(), self.loop
        )
        future.result(10)
        self.app.manager.stop()
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


@pytest.fixture
def service(tmp_path):
    running = RunningService(tmp_path / "service.sqlite")
    yield running
    running.stop()


class TestRouter:
    async def _ok(self, request):
        raise AssertionError("not dispatched in these tests")

    def test_template_segments_captured(self):
        router = Router()
        router.add("GET", "/jobs/{job_id}/events", self._ok)
        handler, params, known = router.match("GET", "/jobs/job-7/events")
        assert handler is not None
        assert params == {"job_id": "job-7"}
        assert known

    def test_unknown_path_vs_wrong_method(self):
        router = Router()
        router.add("GET", "/jobs", self._ok)
        handler, _, known = router.match("POST", "/jobs")
        assert handler is None and known  # 405 territory
        handler, _, known = router.match("GET", "/nope")
        assert handler is None and not known  # 404 territory

    def test_request_json_errors(self):
        request = Request("POST", "/jobs", {}, {}, body=b"{broken")
        with pytest.raises(HttpError) as error:
            request.json()
        assert error.value.status == 400
        empty = Request("POST", "/jobs", {}, {}, body=b"")
        with pytest.raises(HttpError):
            empty.json()


class TestJobManager:
    def test_requires_wal_store(self, tmp_path):
        manager = JobManager(str(tmp_path / "s.sqlite"))
        assert manager.journal_mode == "wal"

    def test_duplicates_within_submission_collapse(self, tmp_path):
        manager = JobManager(str(tmp_path / "s.sqlite"))
        spec = RunSpec.from_dict(SPEC)
        job_id = manager.submit([spec, spec, spec])
        view = manager.describe(job_id)
        assert view["counts"]["total"] == 1
        manager.stop()

    def test_identical_cells_shared_across_jobs(self, tmp_path):
        manager = JobManager(str(tmp_path / "s.sqlite"))
        spec = RunSpec.from_dict(SPEC)
        first = manager.submit([spec])
        second = manager.submit([spec])
        assert manager.describe(first)["counts"]["shared"] == 0
        assert manager.describe(second)["counts"]["shared"] == 1
        manager.start()
        assert manager.wait(first, timeout=60)
        assert manager.wait(second, timeout=60)
        assert manager.stats()["executed"] == 1  # one engine run for both
        for job_id in (first, second):
            view = manager.describe(job_id)
            assert view["state"] == "done"
            assert view["cells"][0]["status"] == "done"
        manager.stop()

    def test_empty_submission_rejected(self, tmp_path):
        manager = JobManager(str(tmp_path / "s.sqlite"))
        with pytest.raises(ValueError, match="at least one spec"):
            manager.submit([])
        manager.stop()

    def test_failed_cells_fail_the_job_and_are_retryable(self, tmp_path):
        manager = JobManager(str(tmp_path / "s.sqlite"))
        manager.start()
        # cap-bp without a period raises inside the engine run.
        bad = RunSpec.from_dict(spec_dict(controller="cap-bp"))
        job_id = manager.submit([bad])
        assert manager.wait(job_id, timeout=60)
        view = manager.describe(job_id)
        assert view["state"] == "failed"
        assert view["cells"][0]["status"] == "failed"
        assert view["cells"][0]["error"]
        events = [e["event"] for e in manager.events_since(job_id, 0)[0]]
        assert "cell_failed" in events
        # A resubmission owns a fresh cell (does not inherit the error).
        retry = manager.submit([bad])
        assert manager.describe(retry)["counts"]["shared"] == 0
        manager.stop()

    def test_event_sequence_for_one_job(self, tmp_path):
        manager = JobManager(str(tmp_path / "s.sqlite"))
        manager.start()
        job_id = manager.submit([RunSpec.from_dict(SPEC)])
        assert manager.wait(job_id, timeout=60)
        events, terminal = manager.events_since(job_id, 0)
        assert terminal
        assert [e["event"] for e in events] == [
            "job_queued", "job_started", "cell_completed", "job_completed",
        ]
        assert [e["seq"] for e in events] == [0, 1, 2, 3]
        assert events[2]["source"] == "executed"
        manager.stop()

    def test_wait_times_out_before_start(self, tmp_path):
        manager = JobManager(str(tmp_path / "s.sqlite"))
        job_id = manager.submit([RunSpec.from_dict(SPEC)])
        assert manager.wait(job_id, timeout=0.05) is False  # worker not started
        manager.stop()


class TestServiceEndpoints:
    def test_healthz_and_envelope(self, service):
        view = service.client.health()
        assert view["status"] == "ok"
        assert view["api_version"] == API_VERSION
        assert view["request_id"].startswith("req-")
        assert view["journal_mode"] == "wal"

    def test_incoming_request_id_is_honoured(self, service):
        url = f"{service.client.base_url}/healthz"
        request = urllib.request.Request(
            url, headers={"X-Request-Id": "req-custom-1"}
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers["X-Request-Id"] == "req-custom-1"
            assert json.load(response)["request_id"] == "req-custom-1"

    def test_unknown_path_and_method(self, service):
        with pytest.raises(ServiceError) as error:
            service.client._request("GET", "/nope")
        assert error.value.status == 404
        with pytest.raises(ServiceError) as error:
            service.client._request("POST", "/healthz")
        assert error.value.status == 405

    def test_submission_body_validated(self, service):
        for body in ({}, {"spec": SPEC, "grid": {}}, {"specs": []}):
            with pytest.raises(ServiceError) as error:
                service.client.submit(body)
            assert error.value.status == 400
        with pytest.raises(ServiceError) as error:
            service.client.submit_spec(spec_dict(pattern="no-such"))
        assert error.value.status == 400
        assert "no-such" in error.value.message

    def test_submit_poll_results_roundtrip(self, service):
        job = service.client.submit_spec(SPEC)["job"]
        assert job["state"] in ("queued", "running", "done")
        done = service.client.job(job["job_id"], wait=60)["job"]
        assert done["state"] == "done"
        assert done["counts"] == {
            "total": 1, "done": 1, "failed": 0, "pending": 0,
            "from_store": 0, "executed": 1, "shared": 0,
        }
        results = service.client.job_results(job["job_id"])["results"]
        assert len(results) == 1
        assert results[0]["source"] == "executed"
        assert results[0]["summary"]["vehicles_entered"] > 0
        assert "result" not in results[0]
        full = service.client.job_results(job["job_id"], full=True)
        assert "summary" in full["results"][0]["result"]

    def test_event_stream_is_ndjson(self, service):
        job = service.client.submit_spec(SPEC)["job"]
        service.client.job(job["job_id"], wait=60)
        events = list(service.client.iter_events(job["job_id"], follow=False))
        assert [e["event"] for e in events] == [
            "job_queued", "job_started", "cell_completed", "job_completed",
        ]

    def test_follow_stream_ends_at_terminal_job(self, service):
        job = service.client.submit_spec(SPEC)["job"]
        # follow=True blocks until the job completes, then closes.
        events = list(service.client.iter_events(job["job_id"], follow=True))
        assert events[-1]["event"] == "job_completed"

    def test_grid_submission_expands_cells(self, service):
        grid = {
            "scenarios": ["steady-4x4"],
            "controllers": ["util-bp", ["cap-bp", {"period": 16}]],
            "seeds": [1, 2],
            "engines": ["meso"],
            "durations": [40.0],
        }
        job = service.client.submit_grid(grid)["job"]
        done = service.client.job(job["job_id"], wait=120)["job"]
        assert done["state"] == "done"
        assert done["counts"]["total"] == 4
        assert done["counts"]["done"] == 4

    def test_sharded_grid_submissions_cover_the_grid(self, service):
        grid = {
            "scenarios": ["steady-4x4"],
            "controllers": ["util-bp"],
            "seeds": [1, 2, 3, 4],
            "engines": ["meso"],
            "durations": [40.0],
        }
        jobs = []
        for index in range(2):
            job = service.client.submit_grid(grid, shard=f"{index}/2")["job"]
            assert job["shard"] == {"index": index, "count": 2}
            jobs.append(job)
        totals = 0
        for job in jobs:
            done = service.client.job(job["job_id"], wait=120)["job"]
            assert done["state"] == "done"
            assert done["shard"] == job["shard"]
            totals += done["counts"]["total"]
        # The two shards partition the grid: every cell ran exactly once.
        assert totals == 4
        stats = service.client.health()["stats"]
        assert stats["executed"] == 4
        assert stats["cells"] == 4

    def test_shard_submission_validated(self, service):
        grid = {
            "scenarios": ["steady-4x4"],
            "seeds": [1],
            "durations": [40.0],
        }
        for body in (
            {"spec": SPEC, "shard": "0/2"},
            {"grid": grid, "shard": "2/2"},
            {"grid": grid, "shard": "nope"},
            {"grid": grid, "shard": [1, 2, 3]},
        ):
            with pytest.raises(ServiceError) as error:
                service.client.submit(body)
            assert error.value.status == 400
        # A shard designator landing on an empty shard is a clear 400,
        # not a zero-cell job: the 1-cell grid fills exactly one of the
        # two shards (which one depends on the content hash).
        whole = service.client.submit_grid(grid)["job"]
        assert whole["shard"] is None
        empty_shards = 0
        for index in range(2):
            try:
                job = service.client.submit_grid(grid, shard=f"{index}/2")
                assert job["job"]["counts"]["total"] == 1
            except ServiceError as error:
                assert error.status == 400
                assert "empty" in error.message
                empty_shards += 1
        assert empty_shards == 1

    def test_healthz_reports_store_rows_and_versions(self, service):
        from repro.orchestration.spec import SPEC_SCHEMA_VERSION

        before = service.client.health()["store"]
        assert before["rows"] == 0
        assert before["layout_version"] == 1
        assert before["spec_schema_version"] == SPEC_SCHEMA_VERSION
        job = service.client.submit_spec(SPEC)["job"]
        service.client.job(job["job_id"], wait=60)
        after = service.client.health()["store"]
        assert after["rows"] == 1
        assert after["path"].endswith("service.sqlite")

    def test_query_and_aggregate_served_from_store(self, service):
        job = service.client.submit_spec(SPEC)["job"]
        service.client.job(job["job_id"], wait=60)
        rows = service.client.query(controller="util-bp")
        assert rows["total"] == 1
        assert rows["rows"][0]["pattern"] == "steady-4x4"
        assert rows["rows"][0]["summary"]["vehicles_entered"] > 0
        empty = service.client.query(controller="fixed-time")
        assert empty["total"] == 0
        agg = service.client.aggregate(by="pattern,controller")
        assert agg["cells"] == 1
        assert len(agg["rows"]) == 1
        with pytest.raises(ServiceError) as error:
            service.client.aggregate(by="nonsense")
        assert error.value.status == 400

    def test_result_by_hash_prefix(self, service):
        job = service.client.submit_spec(SPEC)["job"]
        service.client.job(job["job_id"], wait=60)
        results = service.client.job_results(job["job_id"])["results"]
        spec_hash = results[0]["spec_hash"]
        view = service.client.result(spec_hash[:12])
        assert view["spec_hash"] == spec_hash
        assert view["spec"]["pattern"] == "steady-4x4"
        with pytest.raises(ServiceError) as error:
            service.client.result("ffffffffffff")
        assert error.value.status == 404

    def test_unknown_job_is_404(self, service):
        with pytest.raises(ServiceError) as error:
            service.client.job("job-999999")
        assert error.value.status == 404


class TestEndToEndContract:
    """The acceptance criteria of the service tentpole."""

    def test_concurrent_identical_submissions_execute_once(self, service):
        """Two clients racing the same RunSpec share one computation."""
        outcomes = {}
        barrier = threading.Barrier(2)

        def submit(name):
            client = ServiceClient(service.client.base_url)
            barrier.wait()
            job = client.submit_spec(SPEC)["job"]
            done = client.job(job["job_id"], wait=60)["job"]
            outcomes[name] = (
                done,
                client.job_results(job["job_id"])["results"],
            )

        threads = [
            threading.Thread(target=submit, args=(name,))
            for name in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(90)
        assert set(outcomes) == {"a", "b"}
        # PoolStats: exactly one engine execution for both clients.
        stats = service.client.health()["stats"]
        assert stats["executed"] == 1
        assert stats["cells"] == 1
        # Both received the same spec-hash-keyed result.
        (job_a, results_a), (job_b, results_b) = (
            outcomes["a"], outcomes["b"],
        )
        assert job_a["state"] == job_b["state"] == "done"
        assert results_a[0]["spec_hash"] == results_b[0]["spec_hash"]
        assert results_a[0]["summary"] == results_b[0]["summary"]
        # Exactly one of the two jobs owned the cell.
        shares = sorted(
            (job_a["counts"]["shared"], job_b["counts"]["shared"])
        )
        assert shares == [0, 1]

    def test_restart_serves_from_store_without_recompute(self, tmp_path):
        store_path = tmp_path / "service.sqlite"
        first = RunningService(store_path)
        try:
            job = first.client.submit_spec(SPEC)["job"]
            done = first.client.job(job["job_id"], wait=60)["job"]
            assert done["counts"]["executed"] == 1
        finally:
            first.stop()

        second = RunningService(store_path)
        try:
            job = second.client.submit_spec(SPEC)["job"]
            done = second.client.job(job["job_id"], wait=60)["job"]
            assert done["state"] == "done"
            assert done["counts"]["from_store"] == 1
            assert done["counts"]["executed"] == 0
            stats = second.client.health()["stats"]
            assert stats["executed"] == 0
            assert stats["cache_hits"] == 1
            results = second.client.job_results(job["job_id"])["results"]
            assert results[0]["source"] == "store"
        finally:
            second.stop()

    def test_all_log_lines_are_json_with_request_ids(self, tmp_path):
        stream = io.StringIO()
        configure(stream=stream)
        try:
            service = RunningService(tmp_path / "service.sqlite")
            try:
                job = service.client.submit_spec(SPEC)["job"]
                service.client.job(job["job_id"], wait=60)
                service.client.query(controller="util-bp")
            finally:
                service.stop()
        finally:
            configure(stream=None)
        records = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        assert records, "service produced no log lines"
        for record in records:
            assert {"ts", "level", "component", "event"} <= set(record)
        request_scoped = [
            r for r in records
            if r["event"].startswith(("request_", "job_", "cell_"))
            and r["event"] != "job_submitted_legacy"
        ]
        assert request_scoped
        for record in request_scoped:
            assert str(record.get("request_id", "")).startswith("req-"), (
                f"log line lacks a request id: {record}"
            )


class TestAnalysisEndpoint:
    """GET /results/changepoints and the /api version report."""

    def test_api_reports_versions_and_endpoints(self, service):
        from repro.api import package_version

        info = service.client._request("GET", "/api")
        assert info["api_version"] == API_VERSION
        assert info["package_version"] == package_version()
        assert "GET /results/changepoints" in info["endpoints"]

    def test_empty_store_yields_no_verdicts(self, service):
        payload = service.client._request("GET", "/results/changepoints")
        assert payload["verdicts"] == []
        assert payload["cells"] == 0

    def test_malformed_and_invalid_params_are_400(self, service):
        for params in (
            {"min_points": "abc"},
            {"warmup_fraction": "2.0"},
            {"permutations": "1.5"},
        ):
            with pytest.raises(ServiceError) as error:
                service.client._request(
                    "GET", "/results/changepoints", params=params
                )
            assert error.value.status == 400

    def test_payload_matches_the_cli_analysis(self, tmp_path):
        from repro.analysis import analyze_store, verdict_rows

        store_path = tmp_path / "service.sqlite"
        service = RunningService(store_path)
        try:
            grid = {
                "scenarios": ["steady-4x4"],
                "engines": ["meso-counts"],
                "seeds": [1],
                "durations": [300.0],
                "record_entry_queues": 2,
            }
            job = service.client.submit_grid(grid)["job"]
            done = service.client.job(job["job_id"], wait=120)["job"]
            assert done["state"] == "done"

            payload = service.client._request(
                "GET", "/results/changepoints"
            )
            assert payload["cells"] == 1
            [verdict] = payload["verdicts"]
            assert verdict["pattern"] == "steady-4x4"
            assert verdict["n_runs"] == 1
            assert verdict["status"] in (
                "stable", "breakdown", "insufficient-data",
            )
            # The service payload is exactly the CLI's verdict rows.
            assert payload["verdicts"] == verdict_rows(
                analyze_store(str(store_path))
            )

            # Detector overrides flow through: demanding more samples
            # than the run recorded downgrades it to insufficient-data.
            strict = service.client._request(
                "GET", "/results/changepoints", params={"min_points": 10000}
            )
            assert strict["verdicts"][0]["status"] == "insufficient-data"

            # Filters narrow the store query like /results/aggregate.
            miss = service.client._request(
                "GET",
                "/results/changepoints",
                params={"controller": "fixed-time"},
            )
            assert miss["cells"] == 0
        finally:
            service.stop()
