"""Concurrent store access: one WAL writer, many read-only readers."""

from __future__ import annotations

import threading

import pytest

from repro.experiments.runner import run_scenario
from repro.orchestration import RunSpec
from repro.results import ResultStore
from repro.scenarios.core import build_scenario

QUICK = dict(pattern="I", controller="util-bp", engine="meso", duration=60.0)


def result_for(seed: int):
    return run_scenario(
        build_scenario("I", seed=seed),
        controller="util-bp",
        duration=60.0,
        engine="meso",
    )


class TestReadOnlyStore:
    def test_reader_sees_committed_rows(self, tmp_path):
        path = tmp_path / "s.sqlite"
        spec = RunSpec(**QUICK)
        result = result_for(1)
        writer = ResultStore(path)
        writer.put(spec, result)
        reader = ResultStore.reader(path)
        assert reader.journal_mode == "wal"
        assert reader.get(spec) == result
        reader.close()
        writer.close()

    def test_reader_rejects_writes(self, tmp_path):
        path = tmp_path / "s.sqlite"
        ResultStore(path).close()
        reader = ResultStore.reader(path)
        with pytest.raises(ValueError, match="read-only"):
            reader.put(RunSpec(**QUICK), result_for(1))
        reader.close()

    def test_reader_requires_existing_store(self, tmp_path):
        with pytest.raises((ValueError, Exception)):
            ResultStore.reader(tmp_path / "never-created.sqlite")

    def test_memory_store_cannot_be_read_only(self):
        with pytest.raises(ValueError, match="memory"):
            ResultStore(":memory:", read_only=True)


class TestOneWriterManyReaders:
    def test_readers_see_committed_rows_never_torn(self, tmp_path):
        """Reader threads racing the writer observe only whole rows.

        The writer commits one row per seed while reader threads
        continuously re-query through their own read-only connections.
        Every row a reader observes must decode to the exact result the
        writer stored for that seed (a torn or dirty payload would fail
        JSON decoding or the equality check), and the row count must
        only ever grow.
        """
        path = tmp_path / "s.sqlite"
        ResultStore(path).close()  # create schema before readers open

        seeds = list(range(1, 6))
        expected = {}  # seed -> summary dict, filled before each commit
        expected_lock = threading.Lock()
        stop = threading.Event()
        failures = []

        def reader_loop():
            try:
                while not stop.is_set():
                    reader = ResultStore.reader(path)
                    records = reader.records()
                    reader.close()
                    with expected_lock:
                        known = dict(expected)
                    seen = set()
                    for record in records:
                        seed = record.spec.seed
                        assert seed not in seen, "duplicate row for a seed"
                        seen.add(seed)
                        assert seed in known, (
                            f"reader saw seed {seed} before its commit "
                            f"was published"
                        )
                        assert (
                            record.result.summary.to_dict() == known[seed]
                        ), f"torn/mismatched payload for seed {seed}"
            except BaseException as error:  # noqa: BLE001 - surfaced below
                failures.append(error)

        readers = [
            threading.Thread(target=reader_loop, daemon=True)
            for _ in range(4)
        ]
        for thread in readers:
            thread.start()

        writer = ResultStore(path)
        counts = []
        for seed in seeds:
            result = result_for(seed)
            with expected_lock:
                expected[seed] = result.summary.to_dict()
            writer.put(RunSpec(**{**QUICK, "seed": seed}), result)
            counts.append(len(writer))
        writer.close()

        stop.set()
        for thread in readers:
            thread.join(30)
        if failures:
            raise failures[0]
        assert counts == list(range(1, len(seeds) + 1))

        final = ResultStore.reader(path)
        assert len(final.records()) == len(seeds)
        final.close()

    def test_reader_snapshot_is_stable_while_writer_commits(self, tmp_path):
        """A read-only connection holds a consistent WAL snapshot."""
        path = tmp_path / "s.sqlite"
        writer = ResultStore(path)
        writer.put(RunSpec(**QUICK), result_for(1))

        reader = ResultStore.reader(path)
        before = reader.records()
        writer.put(RunSpec(**{**QUICK, "seed": 2}), result_for(2))
        # The open reader may or may not see the new row depending on
        # its transaction state, but it must never see a partial one.
        after = reader.records()
        assert len(after) in (len(before), len(before) + 1)
        for record in after:
            record.result.summary.to_dict()  # decodes cleanly
        reader.close()

        fresh = ResultStore.reader(path)
        assert len(fresh.records()) == 2  # a new reader sees both commits
        fresh.close()
        writer.close()
