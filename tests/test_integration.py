"""Cross-module integration tests: closed-loop behaviour on both engines."""

from repro.experiments.runner import run_scenario
from repro.scenarios.core import build_scenario


class TestClosedLoopMeso:
    def test_util_bp_beats_fixed_time_under_asymmetric_demand(self):
        """Pattern IV (single heavy direction) rewards adaptivity."""
        util = run_scenario(
            build_scenario("IV", seed=3),
            controller="util-bp",
            duration=900,
        )
        fixed = run_scenario(
            build_scenario("IV", seed=3),
            controller="fixed-time",
            controller_params={"period": 18},
            duration=900,
        )
        assert util.average_queuing_time < fixed.average_queuing_time

    def test_util_bp_beats_original_bp(self):
        """The per-movement pressure + special cases pay off (Sec. IV-Q3)."""
        util = run_scenario(
            build_scenario("I", seed=3),
            controller="util-bp",
            duration=900,
        )
        original = run_scenario(
            build_scenario("I", seed=3),
            controller="original-bp",
            controller_params={"period": 18},
            duration=900,
        )
        assert util.average_queuing_time < original.average_queuing_time

    def test_util_bp_competitive_with_tuned_cap_bp(self):
        """The headline comparison at a reduced horizon: UTIL-BP should
        at least match the best CAP-BP from a small period sweep."""
        util = run_scenario(
            build_scenario("I", seed=3), controller="util-bp", duration=1200
        )
        best_cap = min(
            run_scenario(
                build_scenario("I", seed=3),
                controller="cap-bp",
                controller_params={"period": period},
                duration=1200,
            ).average_queuing_time
            for period in (12, 18, 24)
        )
        assert util.average_queuing_time <= best_cap * 1.05

    def test_run_determinism_end_to_end(self):
        results = [
            run_scenario(
                build_scenario("mixed", seed=11, mixed_segment_duration=100),
                controller="util-bp",
                duration=400,
            ).average_queuing_time
            for _ in range(2)
        ]
        assert results[0] == results[1]

    def test_amber_inserted_between_different_phases(self):
        result = run_scenario(
            build_scenario("I", seed=2),
            controller="util-bp",
            duration=600,
            record_phases=("J11",),
        )
        trace = result.phase_traces["J11"]
        phases = trace.phases
        for previous, current in zip(phases, phases[1:]):
            if previous != 0 and current != 0:
                # A direct control-phase -> control-phase switch would
                # skip the mandatory transition phase.
                raise AssertionError(
                    f"phase {previous} switched to {current} without amber"
                )

    def test_heavier_demand_increases_queuing(self):
        light = run_scenario(
            build_scenario("II", seed=5, demand_scale=0.5),
            controller="util-bp",
            duration=600,
        )
        heavy = run_scenario(
            build_scenario("II", seed=5, demand_scale=1.5),
            controller="util-bp",
            duration=600,
        )
        assert heavy.average_queuing_time > light.average_queuing_time


class TestClosedLoopMicro:
    def test_util_bp_beats_fixed_time(self):
        util = run_scenario(
            build_scenario("IV", seed=3),
            controller="util-bp",
            duration=400,
            engine="micro",
        )
        fixed = run_scenario(
            build_scenario("IV", seed=3),
            controller="fixed-time",
            controller_params={"period": 18},
            duration=400,
            engine="micro",
        )
        assert util.average_queuing_time < fixed.average_queuing_time

    def test_micro_determinism(self):
        results = [
            run_scenario(
                build_scenario("I", seed=4),
                controller="util-bp",
                duration=200,
                engine="micro",
            ).average_queuing_time
            for _ in range(2)
        ]
        assert results[0] == results[1]

    def test_engines_agree_qualitatively(self):
        """Both engines must rank fixed-time below util-bp on Pattern IV;
        absolute numbers differ (different plants), ranking must not."""
        rankings = {}
        for engine in ("meso", "micro"):
            util = run_scenario(
                build_scenario("IV", seed=6),
                controller="util-bp",
                duration=400,
                engine=engine,
            ).average_queuing_time
            fixed = run_scenario(
                build_scenario("IV", seed=6),
                controller="fixed-time",
                controller_params={"period": 20},
                duration=400,
                engine=engine,
            ).average_queuing_time
            rankings[engine] = util < fixed
        assert rankings["meso"] == rankings["micro"] is True
