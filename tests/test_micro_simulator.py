"""Tests for repro.micro.simulator — the SUMO-substitute engine."""

import pytest

from repro.experiments.patterns import TURNING
from repro.micro.params import KraussParams, MicroParams
from repro.micro.simulator import MicroSimulator
from repro.model.arrivals import ArrivalSchedule
from repro.model.grid import build_grid_network
from repro.model.routing import TurningProbabilities


def make_sim(rows=1, cols=1, rate=0.2, seed=0, capacity=120, **kwargs):
    network = build_grid_network(rows, cols, capacity=capacity)
    demand = {
        entry: ArrivalSchedule.constant(rate)
        for entry in network.entry_roads()
    }
    return MicroSimulator(network, demand, TURNING, seed=seed, **kwargs)


class TestMicroSimulator:
    def test_vehicles_flow_through(self):
        sim = make_sim(rate=0.3, seed=1)
        for k in range(300):
            sim.step(1.0, {"J00": (k // 20) % 4 + 1})
        assert sim.collector.vehicles_left > 0

    def test_conservation(self):
        sim = make_sim(rate=0.3, seed=2)
        for k in range(200):
            sim.step(1.0, {"J00": (k // 15) % 4 + 1})
        sim.finalize()
        summary = sim.collector.summary(200.0)
        assert (
            summary.vehicles_entered
            == summary.vehicles_left
            + sim.vehicles_in_network()
            + sim.backlog_size()
        )

    def test_amber_blocks_stop_line(self):
        sim = make_sim(rate=0.5, seed=3)
        for _ in range(200):
            sim.step(1.0, {"J00": 0})
        assert sim.collector.vehicles_left == 0
        # Queues build up at the stop lines.
        obs = sim.observations()["J00"]
        assert sum(obs.movement_queues.values()) > 0

    def test_determinism(self):
        def run():
            sim = make_sim(rate=0.4, seed=9)
            for k in range(150):
                sim.step(1.0, {"J00": (k // 12) % 4 + 1})
            sim.finalize()
            summary = sim.collector.summary(150.0)
            return (summary.vehicles_entered, summary.average_queuing_time)

        assert run() == run()

    def test_waiting_time_accrues_at_red(self):
        sim = make_sim(rate=0.5, seed=4)
        for _ in range(120):
            sim.step(1.0, {"J00": 0})
        sim.finalize()
        assert sim.collector.summary(120.0).average_queuing_time > 0

    def test_observation_shape(self):
        sim = make_sim()
        obs = sim.observations()["J00"]
        assert len(obs.movement_queues) == 12
        assert obs.max_capacity() == 120

    def test_queue_detector_sees_stopped_vehicles(self):
        sim = make_sim(rate=1.0, seed=5)
        for _ in range(60):
            sim.step(1.0, {"J00": 0})
        obs = sim.observations()["J00"]
        total_sensed = sum(obs.movement_queues.values())
        total_halting = sum(
            sim.incoming_queue_total(r)
            for r in sim.network.intersections["J00"].in_roads
        )
        assert total_halting > 0
        assert total_sensed >= total_halting

    def test_spillback_sensor(self):
        # 1x2 grid, tiny roads; J01 always amber -> J00->J01 spills back.
        network = build_grid_network(1, 2, capacity=12, road_length=60.0)
        demand = {"IN:W@J00": ArrivalSchedule.constant(1.0)}
        sim = MicroSimulator(
            network, demand, TurningProbabilities.uniform(0.0, 0.0), seed=1
        )
        for _ in range(300):
            sim.step(1.0, {"J00": 3, "J01": 0})
        obs = sim.observations()["J00"]
        assert obs.out_queues["J00->J01"] > 0

    def test_full_downstream_blocks_crossing(self):
        network = build_grid_network(1, 2, capacity=12, road_length=60.0)
        demand = {"IN:W@J00": ArrivalSchedule.constant(1.0)}
        sim = MicroSimulator(
            network, demand, TurningProbabilities.uniform(0.0, 0.0), seed=1
        )
        for _ in range(400):
            sim.step(1.0, {"J00": 3, "J01": 0})
        # The straight lane of J00->J01 holds at most length/jam_spacing
        # vehicles; the junction must stop feeding it.
        lane_capacity = 60.0 / KraussParams().jam_spacing + 2  # + interior
        straight_lane = sim._lanes["J00->J01"]["OUT:E@J01"]
        assert len(straight_lane) <= lane_capacity

    def test_sub_steps_match_mini_slot(self):
        sim = make_sim(params=MicroParams(dt=0.5))
        sim.step(1.0, {"J00": 1})
        assert sim.time == pytest.approx(1.0)

    def test_step_after_finalize_rejected(self):
        sim = make_sim()
        sim.step(1.0, {"J00": 1})
        sim.finalize()
        with pytest.raises(RuntimeError):
            sim.step(1.0, {"J00": 1})

    def test_invalid_demand_rejected(self):
        network = build_grid_network(1, 1)
        with pytest.raises(ValueError):
            MicroSimulator(
                network,
                {"J00->nowhere": ArrivalSchedule.constant(1.0)},
                TURNING,
            )

    def test_utilization_tracks_amber(self):
        sim = make_sim(rate=0.3, seed=6)
        for k in range(100):
            sim.step(1.0, {"J00": 0 if k % 2 == 0 else 1})
        tracker = sim.utilization["J00"]
        assert tracker.amber_share == pytest.approx(0.5, abs=0.01)
