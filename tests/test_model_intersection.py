"""Tests for repro.model.intersection — the Fig. 1 standard layout."""

import pytest

from repro.model.geometry import Direction, TurnType
from repro.model.grid import build_grid_network
from repro.model.intersection import build_standard_intersection
from repro.model.roads import Road


def make_roads():
    in_roads = {d: Road(f"in_{d.value}") for d in Direction}
    out_roads = {d: Road(f"out_{d.value}") for d in Direction}
    return in_roads, out_roads


class TestStandardIntersection:
    def test_twelve_movements(self):
        in_roads, out_roads = make_roads()
        inter = build_standard_intersection("X", in_roads, out_roads)
        assert len(inter.movements) == 12

    def test_four_phases(self):
        in_roads, out_roads = make_roads()
        inter = build_standard_intersection("X", in_roads, out_roads)
        assert [p.index for p in inter.phases] == [1, 2, 3, 4]

    def test_fig1_phase_table(self):
        """The phase table matches Fig. 1 exactly (compass translated)."""
        in_roads, out_roads = make_roads()
        inter = build_standard_intersection("X", in_roads, out_roads)
        label_sets = {
            phase.index: sorted(m.label() for m in phase.movements)
            for phase in inter.phases
        }
        assert label_sets[1] == ["N:left", "N:straight", "S:left", "S:straight"]
        assert label_sets[2] == ["N:right", "S:right"]
        assert label_sets[3] == ["E:left", "E:straight", "W:left", "W:straight"]
        assert label_sets[4] == ["E:right", "W:right"]

    def test_every_movement_in_exactly_one_phase(self):
        in_roads, out_roads = make_roads()
        inter = build_standard_intersection("X", in_roads, out_roads)
        seen = []
        for phase in inter.phases:
            seen.extend(m.key for m in phase.movements)
        assert sorted(seen) == sorted(inter.movements)

    def test_default_service_rate_is_paper_mu(self):
        in_roads, out_roads = make_roads()
        inter = build_standard_intersection("X", in_roads, out_roads)
        assert all(m.service_rate == 1.0 for m in inter.movements.values())

    def test_service_rate_overrides(self):
        in_roads, out_roads = make_roads()
        overrides = {(Direction.N, TurnType.LEFT): 0.5}
        inter = build_standard_intersection(
            "X", in_roads, out_roads, service_rates=overrides
        )
        left = next(
            m
            for m in inter.movements.values()
            if m.approach is Direction.N and m.turn is TurnType.LEFT
        )
        assert left.service_rate == 0.5

    def test_missing_side_rejected(self):
        in_roads, out_roads = make_roads()
        del in_roads[Direction.N]
        with pytest.raises(ValueError):
            build_standard_intersection("X", in_roads, out_roads)

    def test_lookups(self):
        in_roads, out_roads = make_roads()
        inter = build_standard_intersection("X", in_roads, out_roads)
        assert inter.phase_by_index(2).index == 2
        with pytest.raises(KeyError):
            inter.phase_by_index(9)
        assert len(inter.movements_from("in_N")) == 3
        assert len(inter.movements_into("out_N")) == 3
        assert inter.capacity("in_N") == 120
        with pytest.raises(KeyError):
            inter.capacity("nope")

    def test_movement_lookup(self):
        in_roads, out_roads = make_roads()
        inter = build_standard_intersection("X", in_roads, out_roads)
        movement = inter.movement("in_N", "out_E")
        assert movement.turn is TurnType.LEFT

    def test_grid_intersection_shares_layout(self):
        network = build_grid_network(2, 2)
        for intersection in network.intersections.values():
            assert len(intersection.movements) == 12
            assert len(intersection.phases) == 4
